package core

import (
	"strings"
	"testing"

	"dfence/internal/memmodel"
	"dfence/internal/spec"
	"dfence/internal/telemetry"
)

// collectSink records every emitted event in order.
type collectSink struct{ events []telemetry.Event }

func (c *collectSink) Emit(e telemetry.Event) { c.events = append(c.events, e) }

func synthConfig(extra func(*Config)) Config {
	cfg := Config{
		Model:         memmodel.PSO,
		Criterion:     spec.SeqConsistency,
		NewSpec:       spec.NewDeque,
		ExecsPerRound: 300,
		MaxRounds:     6,
		Seed:          42,
		Workers:       4,
	}
	if extra != nil {
		extra(&cfg)
	}
	return cfg
}

// TestSynthesizeEmitsJournal: the event stream must reconstruct the run —
// one RoundStart/RoundEnd pair per Result round in order, Violation
// events matching the distinct clauses of each round, SolverResult and
// FenceChange for every fencing round, and a terminal Converged agreeing
// with the Result.
func TestSynthesizeEmitsJournal(t *testing.T) {
	p, _, _ := buildSPSC(t)
	sink := &collectSink{}
	reg := telemetry.NewRegistry(4)
	met := telemetry.NewMetrics(reg)
	res, err := Synthesize(p, synthConfig(func(c *Config) {
		c.Sink = sink
		c.Metrics = met
	}))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %s", res.Summary())
	}

	var starts, ends []telemetry.RoundEnd
	var startRounds []int
	var violations []telemetry.Violation
	var solves []telemetry.SolverResult
	var inserts []telemetry.FenceChange
	var conv *telemetry.Converged
	for _, e := range sink.events {
		switch ev := e.(type) {
		case telemetry.RoundStart:
			startRounds = append(startRounds, ev.Round)
		case telemetry.RoundEnd:
			ends = append(ends, ev)
		case telemetry.Violation:
			violations = append(violations, ev)
		case telemetry.SolverResult:
			solves = append(solves, ev)
		case telemetry.FenceChange:
			if ev.Action == "insert" {
				inserts = append(inserts, ev)
			}
		case telemetry.Converged:
			c := ev
			conv = &c
		}
	}
	_ = starts

	if len(startRounds) != len(res.Rounds) || len(ends) != len(res.Rounds) {
		t.Fatalf("%d RoundStart / %d RoundEnd events for %d rounds", len(startRounds), len(ends), len(res.Rounds))
	}
	for i, rd := range res.Rounds {
		if startRounds[i] != i+1 || ends[i].Round != i+1 {
			t.Errorf("round %d events carry rounds %d/%d", i+1, startRounds[i], ends[i].Round)
		}
		if ends[i].Executions != rd.Executions || ends[i].Violations != rd.Violations ||
			ends[i].DistinctClauses != rd.DistinctClauses || ends[i].Predicates != rd.Predicates {
			t.Errorf("RoundEnd %d = %+v does not match Round %+v", i+1, ends[i], rd)
		}
		// One Violation event per distinct clause of the round.
		n := 0
		for _, v := range violations {
			if v.Round == i+1 && len(v.Disjunction) > 0 {
				n++
			}
		}
		if n != rd.DistinctClauses {
			t.Errorf("round %d journaled %d disjunction violations, want %d (distinct clauses)", i+1, n, rd.DistinctClauses)
		}
		if len(rd.Inserted) > 0 {
			found := false
			for _, ins := range inserts {
				if ins.Round == i+1 && len(ins.Fences) == len(rd.Inserted) {
					found = true
				}
			}
			if !found {
				t.Errorf("round %d inserted %d fences but journaled no matching FenceChange", i+1, len(rd.Inserted))
			}
		}
	}
	if len(solves) == 0 {
		t.Error("no SolverResult events for a run that fenced")
	}
	for _, s := range solves {
		if s.Models <= 0 || len(s.Chosen) == 0 {
			t.Errorf("SolverResult %+v lacks models or a chosen assignment", s)
		}
	}
	if conv == nil {
		t.Fatal("no terminal Converged event")
	}
	if conv.Outcome != res.Outcome.String() || conv.Rounds != len(res.Rounds) ||
		conv.TotalExecutions != res.TotalExecutions || conv.Fences != len(res.Fences) {
		t.Errorf("Converged %+v does not match result (outcome=%v rounds=%d execs=%d fences=%d)",
			conv, res.Outcome, len(res.Rounds), res.TotalExecutions, len(res.Fences))
	}

	// The witness execution's Violation event must carry the trace.
	var withTrace *telemetry.Violation
	for i := range violations {
		if len(violations[i].Trace) > 0 {
			withTrace = &violations[i]
			break
		}
	}
	if res.Witness == nil {
		t.Fatal("no witness captured")
	}
	if withTrace == nil {
		t.Fatal("no journaled violation carries the witness trace")
	}
	if len(withTrace.Trace) != len(res.Witness.Decisions) {
		t.Errorf("journaled trace has %d decisions, witness %d", len(withTrace.Trace), len(res.Witness.Decisions))
	}
	if withTrace.Desc == "" {
		t.Error("witness violation event has no description")
	}

	// Metrics must agree with the run's own accounting.
	if got := met.Executions.Value(); got < int64(res.TotalExecutions) {
		t.Errorf("executions counter %d < result's %d", got, res.TotalExecutions)
	}
	if got := met.Rounds.Value(); got != int64(len(res.Rounds)) {
		t.Errorf("rounds counter %d, want %d", got, len(res.Rounds))
	}
	if got := met.FencesInserted.Value(); got != int64(res.SynthesizedFences) {
		t.Errorf("fences-inserted counter %d, want %d", got, res.SynthesizedFences)
	}
	if got := met.CacheHits.Value() + met.CacheMisses.Value(); got == 0 {
		t.Error("cache counters never moved")
	}
}

// TestJournalExplainsWitness is the acceptance-criterion path as a unit
// test: synthesize with a journal, read it back, and render the witness —
// interleaving, buffered stores, and the repair disjunction must all
// appear.
func TestJournalExplainsWitness(t *testing.T) {
	p, _, _ := buildSPSC(t)
	var b strings.Builder
	j := telemetry.NewJournal(&b)
	res, err := Synthesize(p.Clone(), synthConfig(func(c *Config) { c.Sink = j }))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if !res.Converged || len(res.Fences) == 0 {
		t.Fatalf("unexpected run: %s", res.Summary())
	}

	events, err := telemetry.ReadJournal(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("journal does not read back: %v", err)
	}
	jr := telemetry.SummarizeJournal(events)
	wits := jr.Witnesses()
	if len(wits) == 0 {
		t.Fatal("journal has no witness")
	}
	w := wits[0]
	prog := p.Clone()
	if fences := jr.FencesBefore(w.Round); len(fences) > 0 {
		t.Fatalf("first witness should predate all fences, got %d", len(fences))
	}
	out, err := telemetry.ExplainWitness(prog, telemetry.TraceFrom(w.Trace, memmodel.PSO), telemetry.ExplainOptions{
		Round: w.Round, Seed: w.Seed, Desc: w.Desc, Disjunction: w.Disjunction,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"violation witness — PSO, round 1",
		"program (per thread):",
		"interleaving (",
		"BUFFERED",
		"repair disjunction",
		"\u2b30", // the ⊰-style ordering arrow in [L ⤰ K]
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explanation missing %q:\n%s", want, out)
		}
	}
}

// TestTelemetryDisabledIdentical: a run with telemetry fully enabled must
// produce a bit-identical Result to one with it disabled — the
// instrumentation observes, never steers.
func TestTelemetryDisabledIdentical(t *testing.T) {
	p, _, _ := buildSPSC(t)
	bare, err := Synthesize(p.Clone(), synthConfig(nil))
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry(4)
	var b strings.Builder
	j := telemetry.NewJournal(&b)
	instrumented, err := Synthesize(p.Clone(), synthConfig(func(c *Config) {
		c.Metrics = telemetry.NewMetrics(reg)
		c.Sink = telemetry.MultiSink(j, &telemetry.Status{})
	}))
	if err != nil {
		t.Fatal(err)
	}
	// Wall times, the derived rates, and the per-worker cache hit/miss
	// split are the legitimately nondeterministic parts of a Result: the
	// judge caches are per-worker, so which worker lands on which
	// execution shifts the hit/miss split (the total is scheduling-
	// independent). Normalize those before comparing.
	if bt, it := bare.CacheHits+bare.CacheMisses, instrumented.CacheHits+instrumented.CacheMisses; bt != it {
		t.Errorf("total cache lookups differ: bare %d, instrumented %d", bt, it)
	}
	for _, res := range []*Result{bare, instrumented} {
		res.CacheHits, res.CacheMisses = 0, 0
		for i := range res.Rounds {
			res.Rounds[i].Wall, res.Rounds[i].ExecsPerSec = 0, 0
		}
	}
	if bare.Summary() != instrumented.Summary() {
		t.Errorf("telemetry changed the result:\nbare:\n%s\n\ninstrumented:\n%s",
			bare.Summary(), instrumented.Summary())
	}
}
