// Source-located fence descriptions. Historically this lived in
// internal/eval (Table 3 renders fences as "(method, line:line)"), but the
// unified Result renderer needs it too, so the canonical copy is here and
// eval re-exports it.
package core

import (
	"fmt"

	"dfence/internal/ir"
	"dfence/internal/synth"
)

// FenceDesc renders one inferred fence the way Table 3 does: method plus
// the source lines the fence sits between.
type FenceDesc struct {
	Func string
	Kind ir.FenceKind
	// LineBefore is the source line of the store the fence follows;
	// LineAfter the line of the next instruction (0 = method end).
	LineBefore, LineAfter int
}

func (f FenceDesc) String() string {
	after := "-"
	if f.LineAfter > 0 {
		after = fmt.Sprint(f.LineAfter)
	}
	return fmt.Sprintf("(%s, %d:%s)", f.Func, f.LineBefore, after)
}

// DescribeFence locates a synthesized fence in source terms.
func DescribeFence(p *ir.Program, f synth.InsertedFence) FenceDesc {
	d := FenceDesc{Func: f.Func, Kind: f.Kind}
	fn := p.FuncOf(f.Label)
	if fn == nil {
		return d
	}
	idx := fn.IndexOf(f.Label)
	if idx > 0 {
		d.LineBefore = int(fn.Code[idx-1].Line)
	}
	// Find the next instruction from a later source line; treat trailing
	// returns as method end.
	for j := idx + 1; j < len(fn.Code); j++ {
		in := &fn.Code[j]
		if in.Op == ir.OpRet {
			break
		}
		if in.Line != 0 && int(in.Line) != d.LineBefore {
			d.LineAfter = int(in.Line)
			break
		}
	}
	return d
}
