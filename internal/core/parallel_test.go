package core

import (
	"reflect"
	"runtime"
	"testing"

	"dfence/internal/ir"
	"dfence/internal/memmodel"
	"dfence/internal/progs"
	"dfence/internal/spec"
)

// chaseLevCfg builds a reduced-budget Chase-Lev synthesis configuration —
// the acceptance benchmark of the parallel engine.
func chaseLevCfg(t *testing.T, workers int) (*progs.Benchmark, Config) {
	t.Helper()
	b, err := progs.ByName("chase-lev")
	if err != nil {
		t.Fatal(err)
	}
	return b, Config{
		Model:            memmodel.PSO,
		Criterion:        spec.SeqConsistency,
		NewSpec:          b.NewSpec(),
		RelaxStealAborts: b.RelaxStealAborts,
		ExecsPerRound:    150,
		MaxRounds:        8,
		Seed:             3,
		Workers:          workers,
		ValidateFences:   true,
	}
}

// TestSynthesizeWorkersDeterministic is the engine's core guarantee: a
// fixed seed produces identical fences, round statistics, and witness for
// Workers=1 (the serial path) and Workers=8 (the worker pool), on the
// Chase-Lev benchmark under PSO. Running under `go test -race ./...` this
// also proves the shared *ir.Program is safely raced-over by the workers'
// machines.
func TestSynthesizeWorkersDeterministic(t *testing.T) {
	b, serialCfg := chaseLevCfg(t, 1)
	_, parallelCfg := chaseLevCfg(t, 8)

	serial, err := Synthesize(b.Program(), serialCfg)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Synthesize(b.Program(), parallelCfg)
	if err != nil {
		t.Fatal(err)
	}

	if len(serial.Fences) == 0 {
		t.Fatal("synthesis inferred no fences — benchmark budget too small to compare anything")
	}
	if !reflect.DeepEqual(serial.Fences, parallel.Fences) {
		t.Errorf("fences diverge:\n  workers=1: %v\n  workers=8: %v", serial.Fences, parallel.Fences)
	}
	if len(serial.Rounds) != len(parallel.Rounds) {
		t.Fatalf("round counts diverge: workers=1 ran %d, workers=8 ran %d", len(serial.Rounds), len(parallel.Rounds))
	}
	for i := range serial.Rounds {
		s, p := serial.Rounds[i], parallel.Rounds[i]
		if s.Executions != p.Executions || s.Violations != p.Violations ||
			s.DistinctClauses != p.DistinctClauses || s.Predicates != p.Predicates {
			t.Errorf("round %d stats diverge: workers=1 %+v, workers=8 %+v", i, s, p)
		}
	}
	if serial.TotalExecutions != parallel.TotalExecutions {
		t.Errorf("total executions diverge: %d vs %d", serial.TotalExecutions, parallel.TotalExecutions)
	}
	if serial.Converged != parallel.Converged || serial.Redundant != parallel.Redundant ||
		serial.SynthesizedFences != parallel.SynthesizedFences {
		t.Errorf("outcome diverges: workers=1 conv=%v red=%d synth=%d, workers=8 conv=%v red=%d synth=%d",
			serial.Converged, serial.Redundant, serial.SynthesizedFences,
			parallel.Converged, parallel.Redundant, parallel.SynthesizedFences)
	}
	switch {
	case (serial.Witness == nil) != (parallel.Witness == nil):
		t.Errorf("witness presence diverges: workers=1 %v, workers=8 %v", serial.Witness, parallel.Witness)
	case serial.Witness != nil && serial.Witness.String() != parallel.Witness.String():
		t.Errorf("witness schedules diverge:\n  workers=1: %s\n  workers=8: %s", serial.Witness, parallel.Witness)
	}
	if serial.WitnessViolation != parallel.WitnessViolation {
		t.Errorf("witness violations diverge: %q vs %q", serial.WitnessViolation, parallel.WitnessViolation)
	}
}

// TestCheckOnlyWorkersDeterministic: the violation count is exact (no
// early cancellation), so it must match across worker counts.
func TestCheckOnlyWorkersDeterministic(t *testing.T) {
	b, serialCfg := chaseLevCfg(t, 1)
	_, parallelCfg := chaseLevCfg(t, 8)
	s := CheckOnly(b.Program(), serialCfg, 300)
	p := CheckOnly(b.Program(), parallelCfg, 300)
	if s != p {
		t.Fatalf("CheckOnly diverges: workers=1 counted %d, workers=8 counted %d", s, p)
	}
	if s == 0 {
		t.Fatal("unfenced Chase-Lev produced no violations in 300 PSO runs — checker budget broken")
	}
}

// TestFindRedundantFencesWorkersDeterministic: the redundancy verdicts are
// boolean per fence, so they must match across worker counts even though
// the parallel trials early-cancel.
func TestFindRedundantFencesWorkersDeterministic(t *testing.T) {
	p, storeItems, storeT := buildSPSC(t)
	if _, err := p.InsertFenceAfter(storeItems, ir.FenceStoreStore); err != nil {
		t.Fatal(err)
	}
	if _, err := p.InsertFenceAfter(storeT, ir.FenceStoreStore); err != nil {
		t.Fatal(err)
	}
	mk := func(workers int) Config {
		return Config{
			Model:         memmodel.PSO,
			Criterion:     spec.SeqConsistency,
			NewSpec:       spec.NewDeque,
			ExecsPerRound: 300,
			Seed:          11,
			Workers:       workers,
		}
	}
	serial, err := FindRedundantFences(p, mk(1), 600)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := FindRedundantFences(p, mk(8), 600)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("redundant sets diverge: workers=1 %v, workers=8 %v", serial, parallel)
	}
}

// TestConfigFillDefaults pins the documented defaults: ValidateExecs is
// 3 * ExecsPerRound (the doc/code mismatch fixed in this revision) and
// Workers is runtime.NumCPU().
func TestConfigFillDefaults(t *testing.T) {
	cfg := Config{ExecsPerRound: 100}
	cfg.fill()
	if cfg.ValidateExecs != 3*cfg.ExecsPerRound {
		t.Errorf("ValidateExecs default = %d, want 3*ExecsPerRound = %d", cfg.ValidateExecs, 3*cfg.ExecsPerRound)
	}
	if cfg.Workers != runtime.NumCPU() {
		t.Errorf("Workers default = %d, want runtime.NumCPU() = %d", cfg.Workers, runtime.NumCPU())
	}
	// Explicit values survive fill.
	cfg = Config{ExecsPerRound: 100, ValidateExecs: 7, Workers: 3}
	cfg.fill()
	if cfg.ValidateExecs != 7 || cfg.Workers != 3 {
		t.Errorf("fill clobbered explicit values: ValidateExecs=%d Workers=%d", cfg.ValidateExecs, cfg.Workers)
	}
}
