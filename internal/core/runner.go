// Parallel execution engine for the synthesis loop: the glue between
// sched.RunBatch's worker pool and Algorithm 1's per-round bookkeeping.
// Seeds keep the serial assignment Seed + round*ExecsPerRound + i, every
// worker owns a synth.Collector, and per-execution outcomes come back as
// an index-ordered slice so the caller merges repair disjunctions into the
// shared synth.Formula deterministically (by execution index, never by
// completion order). Results are therefore bit-identical for any
// Config.Workers value (wall-clock budgets, when enabled, are the one
// opt-in source of nondeterminism).
package core

import (
	"context"

	"dfence/internal/interp"
	"dfence/internal/ir"
	"dfence/internal/sched"
	"dfence/internal/synth"
	"dfence/internal/trace"
)

// execOutcome is the per-execution record the engine hands back to the
// synthesis loop: just enough to merge into φ and account for the
// three-valued verdict. The zero value means "never ran" (skipped).
type execOutcome struct {
	ran          bool
	violated     bool
	inconclusive bool
	// err is the structured panic report when the execution's interpreter
	// or observer panicked (such executions also count inconclusive).
	err *sched.ExecError
	// repairs is the execution's repair disjunction (violations only; an
	// empty disjunction means fences cannot avoid this execution).
	repairs []synth.Predicate
	// desc describes the violation when repairs is empty (the Unfixable
	// diagnostics of Result).
	desc string
}

// starveEagerFlush is the flush probability of the portfolio's most
// adversarial phase: with the victim's stores vowed away, every OTHER
// store should commit promptly, so the machine state at the end of the
// victim's delay window is as far from the victim's view as possible.
const starveEagerFlush = 0.9

// lazyResolve is the deferred-load resolution probability of the
// portfolio's load-buffering phases. ResolveProb's default couples
// resolution to FlushProb, which is exactly backwards for load-class
// reorderings: a load-buffering outcome wants stores committed eagerly
// but loads resolved as late as possible (resolution is the load's
// commit point — resolving early IS program order). Measured on the
// 2-thread LB litmus shape, eager-flush + lazy-resolve exposes the
// violation ~50x more often than the coupled default (21.8% vs 0.4%
// per execution).
const lazyResolve = 0.05

// portfolioPhases is the scheduler-portfolio cycle length for the given
// model: the four store-delay phases, plus two load-buffering phases on
// models that defer loads. Gating on DefersLoads keeps the option
// stream — and therefore every result — bit-identical to earlier
// versions on SC/TSO/PSO.
func portfolioPhases(cfg *Config) int {
	if cfg.Model.DefersLoads() {
		return 6
	}
	return 4
}

// portfolioPhase applies phase i%portfolioPhases to opts. The plain
// coin (phase 0) finds the common reorderings; the priority strategy
// races one thread far ahead of the others (3-thread critical cycles
// need a head start no uniform pick sequence is likely to produce); the
// starvation vow maximally delays one buffered store per run
// (2+2W-style write cycles need a store to outlive its thread); phase 3
// combines all three knobs — measured on the 3-thread write-cycle
// litmus family, it reaches residual violations of partially fenced
// programs ~50x more often than any single knob. Phases 4 and 5
// (load-deferring models only) commit stores eagerly while resolving
// deferred loads lazily and vowing to keep each deferral window open
// while other threads can run (sched.Options.StarveLoads) — the
// load-buffering analogue of the starve phase; the store-starvation
// vow is deliberately absent there, since vowing a store away blocks
// the commit an LB cycle needs.
func portfolioPhase(cfg *Config, opts sched.Options, i int) sched.Options {
	phase := i % portfolioPhases(cfg)
	opts.Portfolio = uint8(phase) // trace attribution tag; observational
	switch phase {
	case 1:
		opts.Strategy = sched.Priority
	case 2:
		opts.Starve = true
	case 3:
		opts.Strategy = sched.Priority
		opts.Starve = true
		if cfg.FlushProb >= 0 {
			// Negative FlushProb means "never flush early" by contract;
			// the eager phases must not override that.
			opts.FlushProb = starveEagerFlush
		}
	case 4:
		if cfg.FlushProb >= 0 {
			opts.FlushProb = starveEagerFlush
		}
		opts.ResolveProb = lazyResolve
		opts.StarveLoads = true
	case 5:
		opts.Strategy = sched.Priority
		if cfg.FlushProb >= 0 {
			opts.FlushProb = starveEagerFlush
		}
		opts.ResolveProb = lazyResolve
		opts.StarveLoads = true
	}
	return opts
}

// roundOpts builds the scheduler options of execution i of the given
// round — the one place the seed schedule Seed + round*K + i is encoded.
// Config.OptionsHook gets the last word (the fault-injection seam).
func roundOpts(cfg *Config, round, i int) sched.Options {
	opts := portfolioPhase(cfg, sched.Options{
		Seed:      cfg.Seed + int64(round)*int64(cfg.ExecsPerRound) + int64(i),
		FlushProb: cfg.FlushProb,
		MaxSteps:  cfg.MaxStepsPerExec,
		MaxIters:  cfg.MaxItersPerExec,
		PORWindow: 64,
		Timeout:   cfg.ExecTimeout,
		Tracer:    cfg.Tracer,
	}, i)
	if cfg.OptionsHook != nil {
		opts = cfg.OptionsHook(round, i, opts)
	}
	return opts
}

// trialOpts builds the scheduler options of validation and redundancy
// trial executions. The cached and uncached trial implementations both
// call it (the exec cache keys trials on seed index, so their option
// streams must be bit-identical), and it applies the same scheduler
// portfolio as roundOpts on top of the trial flush-probability sweep: a
// missing fence's violation rate peaks at model- and shape-dependent
// scheduler settings (paper Fig. 5), so trying only the synthesis
// setting under-detects.
func trialOpts(cfg *Config, seedBase int64, i int) sched.Options {
	probs := [...]float64{0.1, 0.3, cfg.FlushProb}
	return portfolioPhase(cfg, sched.Options{
		Seed:      seedBase + int64(i),
		FlushProb: probs[i%len(probs)],
		MaxSteps:  cfg.MaxStepsPerExec,
		MaxIters:  cfg.MaxItersPerExec,
		PORWindow: 64,
		Tracer:    cfg.Tracer,
	}, i)
}

// runRound fans one round's ExecsPerRound executions of work across
// cfg.Workers goroutines and returns one outcome slot per execution, in
// execution order. work is shared read-only across the workers; each
// execution gets its own interp.Machine and each worker its own collector.
// Slots whose execution never started (ctx or RoundTimeout expired first)
// come back as the zero outcome with ran == false.
func runRound(ctx context.Context, work *ir.Program, cfg *Config, jcs []judgeCache, round int) []execOutcome {
	if cfg.RoundTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.RoundTimeout)
		defer cancel()
	}
	newObs := func(int) interp.Observer { return synth.NewCollector(cfg.Model) }
	reduce := func(i, worker int, obs interp.Observer, res *interp.Result, err *sched.ExecError) (execOutcome, bool) {
		coll := obs.(*synth.Collector)
		cfg.mv.Executions.Inc(worker)
		if err != nil {
			coll.Reset() // a panicked run may leave partial predicates behind
			err.Round = round
			cfg.mv.Panics.Inc(worker)
			cfg.mv.Inconclusive.Inc(worker)
			return execOutcome{ran: true, inconclusive: true, err: err}, false
		}
		cfg.mv.ExecSteps.Observe(worker, int64(res.Steps))
		switch judgeWorker(cfg, jcs, worker, res) {
		case verdictInconclusive:
			coll.Reset()
			cfg.mv.Inconclusive.Inc(worker)
			if res.TimedOut {
				cfg.mv.Timeouts.Inc(worker)
			}
			return execOutcome{ran: true, inconclusive: true}, false
		case verdictClean:
			coll.Reset()
			cfg.mv.Clean.Inc(worker)
			return execOutcome{ran: true}, false
		}
		cfg.mv.Violations.Inc(worker)
		cfg.Tracer.Instant(worker+1, trace.InstantViolation, round+1, roundOpts(cfg, round, i).Seed)
		out := execOutcome{ran: true, violated: true, repairs: coll.TakeDisjunction()}
		if len(out.repairs) == 0 {
			out.desc = describeViolation(cfg, res)
		}
		return out, false
	}
	return sched.RunBatch(ctx, work, cfg.Model, cfg.ExecsPerRound, cfg.Workers,
		newObs, func(i int) sched.Options { return roundOpts(cfg, round, i) }, reduce)
}

// violationBatch runs n executions of prog (options supplied per index)
// and counts violations. With stopEarly, the first violation found cancels
// the outstanding executions — used by the validation and redundancy
// trials, where any single violation decides the answer; the count is then
// a lower bound, but the any-violation verdict is deterministic for every
// worker count. Without stopEarly all n executions run and the count is
// exact and deterministic. Panicked and inconclusive executions count as
// non-violating here: the trials only ask "did any run expose a bug".
func violationBatch(prog *ir.Program, cfg *Config, jcs []judgeCache, n int, stopEarly bool, optsFor func(i int) sched.Options) (violations int, found bool) {
	slots := sched.RunBatch(context.Background(), prog, cfg.Model, n, cfg.Workers, nil, optsFor,
		func(i, worker int, _ interp.Observer, res *interp.Result, err *sched.ExecError) (bool, bool) {
			cfg.mv.Executions.Inc(worker)
			if err != nil {
				cfg.mv.Panics.Inc(worker)
				return false, false
			}
			v := judgeWorker(cfg, jcs, worker, res) == verdictViolation
			if v {
				cfg.mv.Violations.Inc(worker)
				cfg.Tracer.Instant(worker+1, trace.InstantViolation, 0, 0)
			}
			return v, v && stopEarly
		})
	for _, v := range slots {
		if v {
			violations++
		}
	}
	return violations, violations > 0
}
