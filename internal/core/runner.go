// Parallel execution engine for the synthesis loop: the glue between
// sched.RunBatch's worker pool and Algorithm 1's per-round bookkeeping.
// Seeds keep the serial assignment Seed + round*ExecsPerRound + i, every
// worker owns a synth.Collector, and per-execution outcomes come back as
// an index-ordered slice so the caller merges repair disjunctions into the
// shared synth.Formula deterministically (by execution index, never by
// completion order). Results are therefore bit-identical for any
// Config.Workers value.
package core

import (
	"context"

	"dfence/internal/interp"
	"dfence/internal/ir"
	"dfence/internal/sched"
	"dfence/internal/synth"
)

// execOutcome is the per-execution record the engine hands back to the
// synthesis loop: just enough to merge into φ and account for violations.
type execOutcome struct {
	violated bool
	// repairs is the execution's repair disjunction (violations only; an
	// empty disjunction means fences cannot avoid this execution).
	repairs []synth.Predicate
	// desc describes the violation when repairs is empty (the Unfixable
	// diagnostics of Result).
	desc string
}

// roundOpts builds the scheduler options of execution i of the given
// round — the one place the seed schedule Seed + round*K + i is encoded.
func roundOpts(cfg *Config, round, i int) sched.Options {
	return sched.Options{
		Seed:      cfg.Seed + int64(round)*int64(cfg.ExecsPerRound) + int64(i),
		FlushProb: cfg.FlushProb,
		MaxSteps:  cfg.MaxStepsPerExec,
		PORWindow: 64,
	}
}

// runRound fans one round's ExecsPerRound executions of work across
// cfg.Workers goroutines and returns one outcome slot per execution, in
// execution order. work is shared read-only across the workers; each
// execution gets its own interp.Machine and each worker its own collector.
func runRound(work *ir.Program, cfg *Config, round int) []execOutcome {
	newObs := func(int) interp.Observer { return synth.NewCollector(cfg.Model) }
	reduce := func(i int, obs interp.Observer, res *interp.Result) (execOutcome, bool) {
		coll := obs.(*synth.Collector)
		if !violates(cfg, res) {
			coll.Reset()
			return execOutcome{}, false
		}
		out := execOutcome{violated: true, repairs: coll.TakeDisjunction()}
		if len(out.repairs) == 0 {
			out.desc = describeViolation(res)
		}
		return out, false
	}
	return sched.RunBatch(context.Background(), work, cfg.Model, cfg.ExecsPerRound, cfg.Workers,
		newObs, func(i int) sched.Options { return roundOpts(cfg, round, i) }, reduce)
}

// violationBatch runs n executions of prog (options supplied per index)
// and counts violations. With stopEarly, the first violation found cancels
// the outstanding executions — used by the validation and redundancy
// trials, where any single violation decides the answer; the count is then
// a lower bound, but the any-violation verdict is deterministic for every
// worker count. Without stopEarly all n executions run and the count is
// exact and deterministic.
func violationBatch(prog *ir.Program, cfg *Config, n int, stopEarly bool, optsFor func(i int) sched.Options) (violations int, found bool) {
	slots := sched.RunBatch(context.Background(), prog, cfg.Model, n, cfg.Workers, nil, optsFor,
		func(i int, _ interp.Observer, res *interp.Result) (bool, bool) {
			v := violates(cfg, res)
			return v, v && stopEarly
		})
	for _, v := range slots {
		if v {
			violations++
		}
	}
	return violations, violations > 0
}
