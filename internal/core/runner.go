// Parallel execution engine for the synthesis loop: the glue between
// sched.RunBatch's worker pool and Algorithm 1's per-round bookkeeping.
// Seeds keep the serial assignment Seed + round*ExecsPerRound + i, every
// worker owns a synth.Collector, and per-execution outcomes come back as
// an index-ordered slice so the caller merges repair disjunctions into the
// shared synth.Formula deterministically (by execution index, never by
// completion order). Results are therefore bit-identical for any
// Config.Workers value (wall-clock budgets, when enabled, are the one
// opt-in source of nondeterminism).
package core

import (
	"context"

	"dfence/internal/interp"
	"dfence/internal/ir"
	"dfence/internal/sched"
	"dfence/internal/synth"
)

// execOutcome is the per-execution record the engine hands back to the
// synthesis loop: just enough to merge into φ and account for the
// three-valued verdict. The zero value means "never ran" (skipped).
type execOutcome struct {
	ran          bool
	violated     bool
	inconclusive bool
	// err is the structured panic report when the execution's interpreter
	// or observer panicked (such executions also count inconclusive).
	err *sched.ExecError
	// repairs is the execution's repair disjunction (violations only; an
	// empty disjunction means fences cannot avoid this execution).
	repairs []synth.Predicate
	// desc describes the violation when repairs is empty (the Unfixable
	// diagnostics of Result).
	desc string
}

// roundOpts builds the scheduler options of execution i of the given
// round — the one place the seed schedule Seed + round*K + i is encoded.
// Config.OptionsHook gets the last word (the fault-injection seam).
func roundOpts(cfg *Config, round, i int) sched.Options {
	opts := sched.Options{
		Seed:      cfg.Seed + int64(round)*int64(cfg.ExecsPerRound) + int64(i),
		FlushProb: cfg.FlushProb,
		MaxSteps:  cfg.MaxStepsPerExec,
		PORWindow: 64,
		Timeout:   cfg.ExecTimeout,
	}
	if cfg.OptionsHook != nil {
		opts = cfg.OptionsHook(round, i, opts)
	}
	return opts
}

// runRound fans one round's ExecsPerRound executions of work across
// cfg.Workers goroutines and returns one outcome slot per execution, in
// execution order. work is shared read-only across the workers; each
// execution gets its own interp.Machine and each worker its own collector.
// Slots whose execution never started (ctx or RoundTimeout expired first)
// come back as the zero outcome with ran == false.
func runRound(ctx context.Context, work *ir.Program, cfg *Config, jcs []judgeCache, round int) []execOutcome {
	if cfg.RoundTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.RoundTimeout)
		defer cancel()
	}
	newObs := func(int) interp.Observer { return synth.NewCollector(cfg.Model) }
	reduce := func(i, worker int, obs interp.Observer, res *interp.Result, err *sched.ExecError) (execOutcome, bool) {
		coll := obs.(*synth.Collector)
		cfg.mv.Executions.Inc(worker)
		if err != nil {
			coll.Reset() // a panicked run may leave partial predicates behind
			err.Round = round
			cfg.mv.Panics.Inc(worker)
			cfg.mv.Inconclusive.Inc(worker)
			return execOutcome{ran: true, inconclusive: true, err: err}, false
		}
		cfg.mv.ExecSteps.Observe(worker, int64(res.Steps))
		switch judgeWorker(cfg, jcs, worker, res) {
		case verdictInconclusive:
			coll.Reset()
			cfg.mv.Inconclusive.Inc(worker)
			if res.TimedOut {
				cfg.mv.Timeouts.Inc(worker)
			}
			return execOutcome{ran: true, inconclusive: true}, false
		case verdictClean:
			coll.Reset()
			cfg.mv.Clean.Inc(worker)
			return execOutcome{ran: true}, false
		}
		cfg.mv.Violations.Inc(worker)
		out := execOutcome{ran: true, violated: true, repairs: coll.TakeDisjunction()}
		if len(out.repairs) == 0 {
			out.desc = describeViolation(cfg, res)
		}
		return out, false
	}
	return sched.RunBatch(ctx, work, cfg.Model, cfg.ExecsPerRound, cfg.Workers,
		newObs, func(i int) sched.Options { return roundOpts(cfg, round, i) }, reduce)
}

// violationBatch runs n executions of prog (options supplied per index)
// and counts violations. With stopEarly, the first violation found cancels
// the outstanding executions — used by the validation and redundancy
// trials, where any single violation decides the answer; the count is then
// a lower bound, but the any-violation verdict is deterministic for every
// worker count. Without stopEarly all n executions run and the count is
// exact and deterministic. Panicked and inconclusive executions count as
// non-violating here: the trials only ask "did any run expose a bug".
func violationBatch(prog *ir.Program, cfg *Config, jcs []judgeCache, n int, stopEarly bool, optsFor func(i int) sched.Options) (violations int, found bool) {
	slots := sched.RunBatch(context.Background(), prog, cfg.Model, n, cfg.Workers, nil, optsFor,
		func(i, worker int, _ interp.Observer, res *interp.Result, err *sched.ExecError) (bool, bool) {
			cfg.mv.Executions.Inc(worker)
			if err != nil {
				cfg.mv.Panics.Inc(worker)
				return false, false
			}
			v := judgeWorker(cfg, jcs, worker, res) == verdictViolation
			if v {
				cfg.mv.Violations.Inc(worker)
			}
			return v, v && stopEarly
		})
	for _, v := range slots {
		if v {
			violations++
		}
	}
	return violations, violations > 0
}
