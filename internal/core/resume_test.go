package core

import (
	"strings"
	"testing"

	"dfence/internal/memmodel"
	"dfence/internal/progs"
	"dfence/internal/spec"
	"dfence/internal/telemetry"
)

// TestResumeFromEventsFolding: the journal-to-ResumeState fold rebuilds
// the completed rounds' statistics and cumulative counters from the event
// stream, anchored at the LAST checkpoint.
func TestResumeFromEventsFolding(t *testing.T) {
	fence := telemetry.Fence{After: 2, Label: 90, Kind: "fence(st-st)", Func: "producer"}
	events := []telemetry.Event{
		telemetry.RunStart{Model: "PSO", Criterion: "memory-safety", Seed: 7, Execs: 100, MaxRounds: 5},
		telemetry.RoundStart{Round: 1, DelayPairs: 3},
		telemetry.Violation{Round: 1, Seed: 7, Disjunction: []telemetry.Pred{{L: 2, K: 5}}},
		telemetry.FenceChange{Round: 1, Action: "insert", Count: 1, Fences: []telemetry.Fence{fence}},
		telemetry.RoundEnd{Round: 1, Executions: 100, Violations: 9, Inconclusive: 2, DistinctClauses: 1, Predicates: 1, WallUS: 2000, ExecsPerSec: 50000},
		telemetry.Checkpoint{Round: 1, Fences: []telemetry.Fence{fence}, TotalExecutions: 100, TotalInconclusive: 2},
		telemetry.RoundStart{Round: 2},
		telemetry.RoundEnd{Round: 2, Executions: 100, Violations: 1, DistinctClauses: 1, Predicates: 1},
		telemetry.Checkpoint{Round: 2, Fences: []telemetry.Fence{fence}, TotalExecutions: 200, TotalInconclusive: 2, EmptyRepairs: 1, UnfixableExample: "boom", WitnessCaptured: true},
		// Events after the last checkpoint belong to the dead round and
		// must not appear in the folded state.
		telemetry.RoundStart{Round: 3},
		telemetry.Violation{Round: 3, Seed: 19},
	}
	rs, err := ResumeFromEvents(events)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Round != 2 {
		t.Fatalf("Round = %d, want 2 (last checkpoint)", rs.Round)
	}
	if len(rs.Rounds) != 2 {
		t.Fatalf("folded %d rounds, want 2", len(rs.Rounds))
	}
	r1 := rs.Rounds[0]
	if r1.Executions != 100 || r1.Violations != 9 || r1.Inconclusive != 2 ||
		r1.DistinctClauses != 1 || r1.StaticDelayPairs != 3 || len(r1.Inserted) != 1 {
		t.Fatalf("round 1 folded wrong: %+v", r1)
	}
	if r1.Inserted[0].Label != 90 || r1.Inserted[0].Kind.String() != "fence(st-st)" {
		t.Fatalf("round 1 fence folded wrong: %+v", r1.Inserted[0])
	}
	if rs.TotalExecutions != 200 || rs.TotalInconclusive != 2 || rs.EmptyRepairs != 1 ||
		rs.UnfixableExample != "boom" || !rs.WitnessCaptured {
		t.Fatalf("cumulative counters folded wrong: %+v", rs)
	}
	if len(rs.Fences) != 1 || rs.Fences[0].Label != 90 {
		t.Fatalf("cumulative fences folded wrong: %+v", rs.Fences)
	}

	// No checkpoint: nothing to resume from.
	if rs, err := ResumeFromEvents(events[:5]); err != nil || rs != nil {
		t.Fatalf("checkpoint-free journal: rs=%v err=%v, want nil,nil", rs, err)
	}

	// A checkpoint whose round count disagrees with the RoundEnd events
	// before it is a corrupt journal, not a resumable one.
	bad := []telemetry.Event{
		telemetry.RunStart{Model: "PSO"},
		telemetry.Checkpoint{Round: 3},
	}
	if _, err := ResumeFromEvents(bad); err == nil {
		t.Fatal("inconsistent checkpoint accepted")
	}
}

// checkpointCuts returns, for each Checkpoint in events, the event prefix
// ending at it — the journals a crash between that checkpoint and the
// next durable event would leave behind (modulo the torn tail, which
// ReadJournalOptions strips before the fold ever sees it).
func checkpointCuts(events []telemetry.Event) [][]telemetry.Event {
	var cuts [][]telemetry.Event
	for i, e := range events {
		if _, ok := e.(telemetry.Checkpoint); ok {
			cuts = append(cuts, events[:i+1])
		}
	}
	return cuts
}

// TestSynthesizeInterruptStopsAtCheckpoint: a pre-closed Interrupt channel
// stops the run at the first round boundary with OutcomeAborted and
// Interrupted set, its journal ends in a Checkpoint-covered prefix, and
// resuming that journal completes to the uninterrupted run's exact result.
func TestSynthesizeInterruptStopsAtCheckpoint(t *testing.T) {
	b, err := progs.ByName("chase-lev")
	if err != nil {
		t.Fatal(err)
	}
	mk := func() Config {
		return Config{
			Model:          memmodel.PSO,
			Criterion:      spec.SeqConsistency,
			NewSpec:        b.NewSpec(),
			ExecsPerRound:  150,
			MaxRounds:      5,
			Seed:           7,
			Workers:        4,
			ValidateFences: true,
		}
	}

	// Uninterrupted baseline, with its journal.
	var buf strings.Builder
	j := telemetry.NewJournal(&buf)
	cfg := mk()
	cfg.Sink = j
	base, err := Synthesize(b.Program(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if len(base.Rounds) < 2 {
		t.Fatalf("baseline finished in %d rounds; the interrupt test needs a checkpointed boundary", len(base.Rounds))
	}
	baseKey := resultKey(base)

	// Interrupted run: the closed channel stops it at the first checkpoint.
	interrupt := make(chan struct{})
	close(interrupt)
	var ibuf strings.Builder
	ij := telemetry.NewJournal(&ibuf)
	icfg := mk()
	icfg.Sink = ij
	icfg.Interrupt = interrupt
	partial, err := Synthesize(b.Program(), icfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ij.Close(); err != nil {
		t.Fatal(err)
	}
	if !partial.Interrupted || partial.Outcome != OutcomeAborted {
		t.Fatalf("interrupted run: Interrupted=%v Outcome=%v, want true/aborted", partial.Interrupted, partial.Outcome)
	}
	if len(partial.Rounds) != 1 {
		t.Fatalf("interrupted run completed %d rounds, want 1 (stop at first boundary)", len(partial.Rounds))
	}

	// Resume from the interrupted journal (through the real decode path).
	events, err := telemetry.ReadJournal(strings.NewReader(ibuf.String()))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := ResumeFromEvents(events)
	if err != nil {
		t.Fatal(err)
	}
	if rs == nil || rs.Round != 1 {
		t.Fatalf("resume state = %+v, want checkpoint at round 1", rs)
	}
	rcfg := mk()
	rcfg.Resume = rs
	resumed, err := Synthesize(b.Program(), rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := resultKey(resumed); got != baseKey {
		t.Fatalf("resumed result diverged from uninterrupted run\nbase:    %s\nresumed: %s", baseKey, got)
	}
}

// TestSynthesizeResumeEveryCheckpoint: for every checkpoint the baseline
// run journals, resuming from that prefix reproduces the baseline Result
// exactly — the round-by-round version of the crash-restart guarantee
// (the corpus-wide, real-bytes variant lives in internal/faultinject).
func TestSynthesizeResumeEveryCheckpoint(t *testing.T) {
	b, err := progs.ByName("cilk-the")
	if err != nil {
		t.Fatal(err)
	}
	mk := func() Config {
		return Config{
			Model:          memmodel.PSO,
			Criterion:      spec.SeqConsistency,
			NewSpec:        b.NewSpec(),
			ExecsPerRound:  150,
			MaxRounds:      5,
			Seed:           7,
			Workers:        4,
			ValidateFences: true,
		}
	}
	sink := &collectSink{}
	cfg := mk()
	cfg.Sink = sink
	base, err := Synthesize(b.Program(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	baseKey := resultKey(base)
	cuts := checkpointCuts(sink.events)
	if len(cuts) == 0 {
		t.Skip("baseline emitted no checkpoints (single-round run); nothing to resume")
	}
	for i, cut := range cuts {
		rs, err := ResumeFromEvents(cut)
		if err != nil {
			t.Fatalf("checkpoint %d: %v", i+1, err)
		}
		rcfg := mk()
		rcfg.Resume = rs
		resumed, err := Synthesize(b.Program(), rcfg)
		if err != nil {
			t.Fatalf("checkpoint %d: %v", i+1, err)
		}
		if got := resultKey(resumed); got != baseKey {
			t.Fatalf("resume from checkpoint %d (round %d) diverged\nbase:    %s\nresumed: %s",
				i+1, rs.Round, baseKey, got)
		}
	}
}
