package core

import (
	"testing"

	"dfence/internal/ir"
	"dfence/internal/lang"
	"dfence/internal/memmodel"
	"dfence/internal/spec"
)

// findStore returns the label of the nth shared store to global in fn.
func findStore(t *testing.T, p *ir.Program, fn, global string) ir.Label {
	t.Helper()
	f := p.Funcs[fn]
	if f == nil {
		t.Fatalf("no function %q", fn)
	}
	regGlobal := make(map[ir.Reg]string)
	for i := range f.Code {
		in := &f.Code[i]
		if in.Op == ir.OpGlobal {
			regGlobal[in.Dst] = in.Func
			continue
		}
		if in.Op == ir.OpStore && regGlobal[in.A] == global {
			return in.Label
		}
	}
	t.Fatalf("no store to %q in %s", global, fn)
	return ir.NoLabel
}

// A program whose only reordering is already fenced has an empty static
// delay set: with StaticPrune on, synthesis must converge in zero dynamic
// rounds via the fast path.
func TestStaticFastPathFencedProgram(t *testing.T) {
	p := lang.MustCompile(`
int data = 0; int flag = 0;
void producer() { data = 42; fence_ss(); flag = 1; }
void consumer() {
  while (!flag) { }
  assert(data == 42);
}
int main() {
  int t1 = fork producer();
  int t2 = fork consumer();
  join t1; join t2;
  return 0;
}
`)
	res, err := Synthesize(p, Config{
		Model:       memmodel.PSO,
		Criterion:   spec.MemorySafety,
		Seed:        1,
		StaticPrune: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.StaticallyRobust {
		t.Fatalf("fenced program not reported statically robust: %s", res.Summary())
	}
	if !res.Converged || res.Outcome != OutcomeConverged {
		t.Fatalf("fast path did not converge: %s", res.Summary())
	}
	if res.TotalExecutions != 0 || len(res.Rounds) != 0 {
		t.Fatalf("fast path ran %d executions over %d rounds, want 0", res.TotalExecutions, len(res.Rounds))
	}
	if len(res.Fences) != 0 {
		t.Fatalf("fast path inserted fences: %v", res.Fences)
	}
}

// A single-threaded program has no critical cycles at all — the other
// shape of the zero-round fast path.
func TestStaticFastPathSingleThreaded(t *testing.T) {
	p := lang.MustCompile(`
int x = 0; int y = 0;
int main() {
  x = 1;
  y = 2;
  print(x);
  print(y);
  return 0;
}
`)
	for _, model := range []memmodel.Model{memmodel.TSO, memmodel.PSO} {
		res, err := Synthesize(p, Config{
			Model:       model,
			Criterion:   spec.MemorySafety,
			Seed:        1,
			StaticPrune: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.StaticallyRobust || res.TotalExecutions != 0 {
			t.Fatalf("%v: single-threaded program not fast-pathed: %s", model, res.Summary())
		}
	}
}

// MP under TSO is statically robust without any fence (the producer never
// loads after its stores) — the fast path must prove it with zero
// executions where the plain loop would spend a full round.
func TestStaticFastPathMPTSOUnfenced(t *testing.T) {
	p := lang.MustCompile(`
int data = 0; int flag = 0;
void producer() { data = 42; flag = 1; }
void consumer() {
  while (!flag) { }
  assert(data == 42);
}
int main() {
  int t1 = fork producer();
  int t2 = fork consumer();
  join t1; join t2;
  return 0;
}
`)
	res, err := Synthesize(p, Config{
		Model:       memmodel.TSO,
		Criterion:   spec.MemorySafety,
		Seed:        1,
		StaticPrune: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.StaticallyRobust || res.TotalExecutions != 0 {
		t.Fatalf("MP/TSO not fast-pathed: %s", res.Summary())
	}
}

// The co-traveler program: the writer's stores to a and b ride along with
// the x/y message-passing idiom, so violating executions propose
// predicates over all four globals — but only [x ⊰ y] lies on a static
// critical cycle. With StaticPrune on, the pruned formula must still
// converge to the same single fence, and the statistics must show the
// co-traveler predicates being discarded.
func TestStaticPrunePrunesCoTravelers(t *testing.T) {
	src := `
int x = 0; int y = 0; int a = 0; int b = 0;
void w() { a = 1; b = 1; x = 1; y = 1; }
void r() {
  while (!y) { }
  assert(x);
}
int main() {
  int t1 = fork w();
  int t2 = fork r();
  join t1; join t2;
  return 0;
}
`
	base := Config{
		Model:         memmodel.PSO,
		Criterion:     spec.MemorySafety,
		ExecsPerRound: 300,
		MaxRounds:     6,
		Seed:          7,
	}

	pruned := base
	pruned.StaticPrune = true
	p := lang.MustCompile(src)
	res, err := Synthesize(p, pruned)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("pruned synthesis did not converge: %s", res.Summary())
	}
	if res.StaticallyRobust {
		t.Fatal("buggy program reported statically robust")
	}
	if res.StaticDelayPairs != 1 {
		t.Errorf("static delay pairs = %d, want 1 ([x ⊰ y]): %s", res.StaticDelayPairs, res.Summary())
	}
	if res.StaticCandidates <= res.StaticDelayPairs {
		t.Errorf("candidates (%d) should exceed delay pairs (%d) on the co-traveler program",
			res.StaticCandidates, res.StaticDelayPairs)
	}
	if res.PrunedPredicates == 0 {
		t.Errorf("no predicates were pruned: %s", res.Summary())
	}
	wantAfter := findStore(t, p, "w", "x")
	if len(res.Fences) != 1 || res.Fences[0].After != wantAfter {
		t.Fatalf("pruned synthesis fences = %v, want exactly one after L%d (the x store)",
			res.Fences, wantAfter)
	}

	// The unpruned loop must converge to the same repair: pruning only
	// removes predicates the solver would not have needed.
	res2, err := Synthesize(lang.MustCompile(src), base)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Converged {
		t.Fatalf("baseline synthesis did not converge: %s", res2.Summary())
	}
	if res2.PrunedPredicates != 0 || res2.StaticCandidates != 0 || res2.StaticallyRobust {
		t.Errorf("baseline run reports static statistics despite StaticPrune=false: %s", res2.Summary())
	}
}
