package core

import (
	"strings"
	"testing"

	"dfence/internal/ir"
	"dfence/internal/memmodel"
	"dfence/internal/spec"
)

func TestSummaryMentionsEverything(t *testing.T) {
	p, _, _ := buildSPSC(t)
	res, err := Synthesize(p, Config{
		Model:         memmodel.PSO,
		Criterion:     spec.SeqConsistency,
		NewSpec:       spec.NewDeque,
		ExecsPerRound: 300,
		MaxRounds:     6,
		Seed:          42,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary()
	for _, want := range []string{"rounds=", "executions=", "converged=true", "fences inserted: 1", "fence(st-st)"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestRoundStatsRecorded(t *testing.T) {
	p, _, _ := buildSPSC(t)
	res, err := Synthesize(p, Config{
		Model:         memmodel.PSO,
		Criterion:     spec.SeqConsistency,
		NewSpec:       spec.NewDeque,
		ExecsPerRound: 300,
		MaxRounds:     6,
		Seed:          42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) < 2 {
		t.Fatalf("rounds = %d, want >= 2 (repair + clean verification)", len(res.Rounds))
	}
	first := res.Rounds[0]
	if first.Executions != 300 {
		t.Errorf("round 1 executions = %d", first.Executions)
	}
	if first.Violations == 0 || first.Predicates == 0 || first.DistinctClauses == 0 {
		t.Errorf("round 1 stats empty: %+v", first)
	}
	last := res.Rounds[len(res.Rounds)-1]
	if last.Violations != 0 {
		t.Errorf("final round has %d violations but synthesis converged", last.Violations)
	}
	total := 0
	for _, r := range res.Rounds {
		total += r.Executions
	}
	if total != res.TotalExecutions {
		t.Errorf("execution accounting: %d vs %d", total, res.TotalExecutions)
	}
}

func TestMergeFencesConfigApplied(t *testing.T) {
	// Build a program with two programmer fences back to back plus the
	// SPSC bug; after synthesis with MergeFences the redundant one is gone.
	p := ir.NewProgram()
	if err := p.AddGlobal(&ir.Global{Name: "x", Size: 1}); err != nil {
		t.Fatal(err)
	}
	b := ir.NewFuncBuilder(p, "main", 0)
	ga := b.GlobalAddr("x")
	v := b.Const(1)
	b.Store(ga, v, "x")
	b.Fence(ir.FenceFull)
	b.Fence(ir.FenceFull) // redundant
	b.Ret()
	if _, err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
	res, err := Synthesize(p, Config{
		Model:         memmodel.PSO,
		Criterion:     spec.MemorySafety,
		ExecsPerRound: 50,
		MaxRounds:     2,
		Seed:          1,
		MergeFences:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MergedAway != 1 {
		t.Errorf("MergedAway = %d, want 1", res.MergedAway)
	}
	if got := len(res.Program.Fences()); got != 1 {
		t.Errorf("fences left = %d, want 1", got)
	}
}

func TestNoMinimizeEnforcesMore(t *testing.T) {
	run := func(noMin bool) int {
		p, _, _ := buildSPSC(t)
		res, err := Synthesize(p, Config{
			Model:         memmodel.PSO,
			Criterion:     spec.SeqConsistency,
			NewSpec:       spec.NewDeque,
			ExecsPerRound: 300,
			MaxRounds:     6,
			Seed:          42,
			NoMinimize:    noMin,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("noMin=%v did not converge", noMin)
		}
		return res.SynthesizedFences
	}
	min := run(false)
	all := run(true)
	if all < min {
		t.Errorf("NoMinimize inserted fewer fences (%d) than minimized (%d)", all, min)
	}
}

func TestCheckOnlyZeroOnRepairedEvenWithHighBudget(t *testing.T) {
	p, storeItems, _ := buildSPSC(t)
	if _, err := p.InsertFenceAfter(storeItems, ir.FenceStoreStore); err != nil {
		t.Fatal(err)
	}
	cfg := Config{Model: memmodel.PSO, Criterion: spec.SeqConsistency, NewSpec: spec.NewDeque, Seed: 9}
	if v := CheckOnly(p, cfg, 800); v != 0 {
		t.Errorf("hand-fenced program violates %d/800", v)
	}
}

func TestViolationDescriptionForHistories(t *testing.T) {
	p, _, _ := buildSPSC(t)
	res, err := Synthesize(p, Config{
		Model:         memmodel.PSO,
		Criterion:     spec.SeqConsistency,
		NewSpec:       spec.NewDeque,
		ExecsPerRound: 300,
		MaxRounds:     6,
		Seed:          42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Witness == nil {
		t.Fatal("no witness")
	}
	if !strings.Contains(res.WitnessViolation, "take") && !strings.Contains(res.WitnessViolation, "violation") {
		t.Errorf("witness description uninformative: %q", res.WitnessViolation)
	}
}
