package core

import (
	"context"
	"fmt"
	"testing"

	"dfence/internal/interp"
	"dfence/internal/ir"
	"dfence/internal/litmus"
	"dfence/internal/memmodel"
	"dfence/internal/progs"
	"dfence/internal/sched"
	"dfence/internal/spec"
)

// The engine-determinism corpus tests: machine pooling (PR 4's compiled
// dispatch + Reset reuse) and the execution caches are pure performance
// mechanisms, so every observable result must be bit-identical to the
// fresh-machine, cache-free paths — across the whole litmus and benchmark
// corpus, under both memory models, and under -race (the CI race job runs
// this package).

// execKey summarizes one execution for bit-identity comparison.
func execKey(res *interp.Result) string {
	viol := ""
	if res.Violation != nil {
		viol = res.Violation.Error()
	}
	return fmt.Sprintf("steps=%d out=%v hist=%d/%s viol=%q limit=%v",
		res.Steps, res.Output, len(res.History), string(appendHistoryKey(nil, res.History)), viol, res.StepLimitHit)
}

// corpusPrograms returns every litmus test and benchmark program with a
// short name.
func corpusPrograms(t *testing.T) map[string]*ir.Program {
	t.Helper()
	out := make(map[string]*ir.Program)
	for _, lt := range litmus.All() {
		out["litmus/"+lt.Name] = lt.Program()
	}
	for _, b := range progs.All() {
		out["bench/"+b.Name] = b.Program()
	}
	return out
}

// TestPooledBatchMatchesFreshRuns: for every corpus program and both
// models, the pooled batch engine (serial and parallel) reproduces the
// per-execution results of fresh one-shot sched.Run calls exactly.
func TestPooledBatchMatchesFreshRuns(t *testing.T) {
	const n = 12
	for name, prog := range corpusPrograms(t) {
		for _, model := range []memmodel.Model{memmodel.TSO, memmodel.PSO} {
			optsFor := func(i int) sched.Options {
				fp := 0.5
				if model == memmodel.TSO {
					fp = 0.1
				}
				return sched.Options{Seed: int64(100 + i), FlushProb: fp, MaxSteps: 100000, PORWindow: 64}
			}
			fresh := make([]string, n)
			for i := 0; i < n; i++ {
				fresh[i] = execKey(sched.Run(prog, model, nil, optsFor(i)))
			}
			for _, workers := range []int{1, 4} {
				got := sched.RunBatch(context.Background(), prog, model, n, workers, nil, optsFor,
					func(i, _ int, _ interp.Observer, res *interp.Result, err *sched.ExecError) (string, bool) {
						if err != nil {
							t.Errorf("%s/%v: exec %d panicked: %v", name, model, i, err)
							return "", false
						}
						return execKey(res), false
					})
				for i := range fresh {
					if got[i] != fresh[i] {
						t.Fatalf("%s/%v workers=%d exec %d: pooled diverged from fresh\npooled: %s\nfresh:  %s",
							name, model, workers, i, got[i], fresh[i])
					}
				}
			}
		}
	}
}

// resultKey summarizes a synthesis result's observable outcome (cache
// counters and wall-clock fields excluded by construction).
func resultKey(res *Result) string {
	s := fmt.Sprintf("outcome=%v fences=%v synth=%d redundant=%d empty=%d execs=%d",
		res.Outcome, res.Fences, res.SynthesizedFences, res.Redundant, res.EmptyRepairs, res.TotalExecutions)
	for _, r := range res.Rounds {
		s += fmt.Sprintf(" [execs=%d viol=%d inc=%d clauses=%d preds=%d ins=%v]",
			r.Executions, r.Violations, r.Inconclusive, r.DistinctClauses, r.Predicates, r.Inserted)
	}
	return s
}

// TestSynthesizeCacheAndWorkerDeterminism: full synthesis (with fence
// validation) is bit-identical between the serial cache-free configuration
// and the parallel cache-enabled one, for representative benchmarks under
// both models.
func TestSynthesizeCacheAndWorkerDeterminism(t *testing.T) {
	subjects := []string{"chase-lev", "cilk-the", "ms2-queue", "lifo-iwsq"}
	for _, name := range subjects {
		b, err := progs.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, model := range []memmodel.Model{memmodel.TSO, memmodel.PSO} {
			crit := spec.SeqConsistency
			if b.SkipSeqCheck {
				crit = spec.MemorySafety
			}
			base := Config{
				Model:            model,
				Criterion:        crit,
				NewSpec:          b.NewSpec(),
				CheckGarbage:     b.CheckGarbage,
				RelaxStealAborts: b.RelaxStealAborts,
				ExecsPerRound:    150,
				MaxRounds:        5,
				Seed:             7,
				ValidateFences:   true,
			}
			var keys []string
			for _, mode := range []struct {
				workers int
				nocache bool
			}{{1, true}, {1, false}, {4, false}} {
				cfg := base
				cfg.Workers = mode.workers
				cfg.NoExecCache = mode.nocache
				res, err := Synthesize(b.Program(), cfg)
				if err != nil {
					t.Fatalf("%s/%v workers=%d nocache=%v: %v", name, model, mode.workers, mode.nocache, err)
				}
				if !mode.nocache && res.CacheHits+res.CacheMisses == 0 && res.TotalExecutions > 0 {
					t.Errorf("%s/%v: cache-enabled run recorded no cache traffic", name, model)
				}
				keys = append(keys, resultKey(res))
			}
			for i := 1; i < len(keys); i++ {
				if keys[i] != keys[0] {
					t.Fatalf("%s/%v: configuration %d diverged\nbase: %s\ngot:  %s", name, model, i, keys[0], keys[i])
				}
			}
		}
	}
}

// TestIncrementalSolverMatchesFresh: the persistent cross-round SAT
// solver is a pure performance mechanism — full synthesis must be
// bit-identical between the persistent path (default) and the
// fresh-solver-per-round path (FreshSolver), for representative corpus
// subjects under all four memory models and at multiple worker counts.
func TestIncrementalSolverMatchesFresh(t *testing.T) {
	subjects := []string{"chase-lev", "cilk-the", "ms2-queue", "lifo-iwsq"}
	models := []memmodel.Model{memmodel.SC, memmodel.TSO, memmodel.PSO, memmodel.RMO}
	for _, name := range subjects {
		b, err := progs.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, model := range models {
			crit := spec.SeqConsistency
			if b.SkipSeqCheck {
				crit = spec.MemorySafety
			}
			// Reduced budgets and no validation pass: the solver
			// differential lives in the per-round repair loop, and
			// validation would triple the runtime without exercising
			// any additional solver path. FlushProb is set explicitly
			// (the model-recommended values) because a zero flush
			// probability under RMO produces the pathological crawling
			// schedules ExecTimeout exists for — see the Config docs.
			fp := 0.5
			if model == memmodel.TSO {
				fp = 0.1
			}
			base := Config{
				Model:            model,
				Criterion:        crit,
				NewSpec:          b.NewSpec(),
				CheckGarbage:     b.CheckGarbage,
				RelaxStealAborts: b.RelaxStealAborts,
				ExecsPerRound:    80,
				MaxRounds:        3,
				FlushProb:        fp,
				Seed:             11,
				// Deterministic budget on scheduler-loop iterations. The RMO
				// portfolio's load-starving phases used to crawl on ms2-queue
				// for minutes per synthesis — deferral-loop spins make no
				// machine steps, so MaxStepsPerExec never trips, and
				// ExecTimeout is wall-clock-dependent, which a bit-identity
				// test cannot tolerate. The budget cuts the spinners
				// identically in every configuration (over-budget runs are
				// judged inconclusive) while staying far above what any
				// healthy execution in this corpus uses.
				MaxItersPerExec: 200_000,
			}
			var keys []string
			for _, mode := range []struct {
				workers int
				fresh   bool
			}{{1, false}, {4, false}, {4, true}} {
				cfg := base
				cfg.Workers = mode.workers
				cfg.FreshSolver = mode.fresh
				res, err := Synthesize(b.Program(), cfg)
				if err != nil {
					t.Fatalf("%s/%v workers=%d fresh=%v: %v", name, model, mode.workers, mode.fresh, err)
				}
				keys = append(keys, resultKey(res))
			}
			for i := 1; i < len(keys); i++ {
				if keys[i] != keys[0] {
					t.Fatalf("%s/%v: solver mode %d diverged\nbase: %s\ngot:  %s", name, model, i, keys[0], keys[i])
				}
			}
		}
	}
}

// TestFindRedundantCacheDeterminism: the cached redundancy scan returns
// the identical label set as the uncached scan on a program that carries
// synthesized fences.
func TestFindRedundantCacheDeterminism(t *testing.T) {
	b, err := progs.ByName("chase-lev")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Model:         memmodel.PSO,
		Criterion:     spec.SeqConsistency,
		NewSpec:       b.NewSpec(),
		ExecsPerRound: 150,
		MaxRounds:     5,
		Seed:          7,
	}
	res, err := Synthesize(b.Program(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fences) == 0 {
		t.Skip("no fences synthesized; redundancy scan is vacuous")
	}
	var got [][]ir.Label
	for _, nocache := range []bool{false, true} {
		c := cfg
		c.NoExecCache = nocache
		labels, err := FindRedundantFences(res.Program, c, 150)
		if err != nil {
			t.Fatalf("nocache=%v: %v", nocache, err)
		}
		got = append(got, labels)
	}
	if fmt.Sprint(got[0]) != fmt.Sprint(got[1]) {
		t.Fatalf("redundancy scan diverged: cached=%v uncached=%v", got[0], got[1])
	}
}
