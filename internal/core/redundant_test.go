package core

import (
	"strings"
	"testing"

	"dfence/internal/ir"
	"dfence/internal/lang"
	"dfence/internal/memmodel"
	"dfence/internal/spec"
)

// The §6.3.1 experiment: hand the tool an over-fenced implementation and
// let it discover which fences are redundant.

// overFencedMP: the message-passing pattern with the one required
// store-store fence plus two gratuitous ones.
const overFencedMP = `
int data = 0;
int flag = 0;

void producer() {
  fence();       // redundant: nothing buffered yet
  data = 42;
  fence_ss();    // required: orders data before flag on PSO
  flag = 1;
}

void consumer() {
  while (!flag) { }
  fence_sl();    // redundant: loads are never delayed
  assert(data == 42);
}

int main() {
  int t1 = fork producer();
  int t2 = fork consumer();
  join t1;
  join t2;
  return 0;
}
`

func TestFindRedundantFencesMP(t *testing.T) {
	prog, err := lang.Compile(overFencedMP)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(prog.Fences()); got != 3 {
		t.Fatalf("program has %d fences, want 3", got)
	}
	cfg := Config{
		Model:         memmodel.PSO,
		Criterion:     spec.MemorySafety,
		ExecsPerRound: 400,
		Seed:          5,
	}
	redundant, err := FindRedundantFences(prog, cfg, 800)
	if err != nil {
		t.Fatal(err)
	}
	if len(redundant) != 2 {
		t.Fatalf("found %d redundant fences, want 2 (the leading fence and the consumer's)", len(redundant))
	}
	// The required fence (between the data and flag stores in producer)
	// must NOT be among them.
	for _, l := range redundant {
		in := prog.InstrAt(l)
		if in == nil || in.Op != ir.OpFence {
			t.Fatalf("redundant label L%d is not a fence", l)
		}
		if in.Kind == ir.FenceStoreStore {
			t.Errorf("the required store-store fence was declared redundant")
		}
	}
	// Input program untouched.
	if got := len(prog.Fences()); got != 3 {
		t.Errorf("FindRedundantFences mutated the input (now %d fences)", got)
	}
}

func TestFindRedundantFencesRejectsBrokenProgram(t *testing.T) {
	// A program violating its spec with all fences present cannot be
	// analyzed for redundancy.
	src := strings.Replace(overFencedMP, "fence_ss();    // required", "// no fence", 1)
	prog, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Model: memmodel.PSO, Criterion: spec.MemorySafety, ExecsPerRound: 400, Seed: 5}
	if _, err := FindRedundantFences(prog, cfg, 800); err == nil {
		t.Fatal("under-fenced program accepted")
	}
}

func TestFindRedundantFencesCleanProgram(t *testing.T) {
	// A fence-free correct program reports nothing.
	prog, err := lang.Compile(`
int main() {
  print(1);
  return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Model: memmodel.PSO, Criterion: spec.MemorySafety, ExecsPerRound: 50, Seed: 1}
	redundant, err := FindRedundantFences(prog, cfg, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(redundant) != 0 {
		t.Errorf("redundant = %v on a fence-free program", redundant)
	}
}

// TestFindRedundantFencesOverFencedChaseLev: take the fence-free SPSC-style
// program from core_test, insert the one required fence plus a gratuitous
// one, and check that exactly the gratuitous fence is reported.
func TestFindRedundantFencesOverFencedSPSC(t *testing.T) {
	p, storeItems, storeT := buildSPSC(t)
	if _, err := p.InsertFenceAfter(storeItems, ir.FenceStoreStore); err != nil {
		t.Fatal(err)
	}
	extra, err := p.InsertFenceAfter(storeT, ir.FenceStoreStore)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Model:         memmodel.PSO,
		Criterion:     spec.SeqConsistency,
		NewSpec:       spec.NewDeque,
		ExecsPerRound: 400,
		Seed:          11,
	}
	redundant, err := FindRedundantFences(p, cfg, 800)
	if err != nil {
		t.Fatal(err)
	}
	if len(redundant) != 1 || redundant[0] != extra {
		t.Errorf("redundant = %v, want exactly the post-T fence L%d", redundant, extra)
	}
}
