package core

import (
	"strings"
	"testing"

	"dfence/internal/ir"
	"dfence/internal/lang"
	"dfence/internal/memmodel"
	"dfence/internal/spec"
)

// The §6.3.1 experiment: hand the tool an over-fenced implementation and
// let it discover which fences are redundant.

// overFencedMP: the message-passing pattern with the one required
// store-store fence plus two gratuitous ones.
const overFencedMP = `
int data = 0;
int flag = 0;

void producer() {
  fence();       // redundant: nothing buffered yet
  data = 42;
  fence_ss();    // required: orders data before flag on PSO
  flag = 1;
}

void consumer() {
  while (!flag) { }
  fence_sl();    // redundant: loads are never delayed
  assert(data == 42);
}

int main() {
  int t1 = fork producer();
  int t2 = fork consumer();
  join t1;
  join t2;
  return 0;
}
`

func TestFindRedundantFencesMP(t *testing.T) {
	prog, err := lang.Compile(overFencedMP)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(prog.Fences()); got != 3 {
		t.Fatalf("program has %d fences, want 3", got)
	}
	cfg := Config{
		Model:         memmodel.PSO,
		Criterion:     spec.MemorySafety,
		ExecsPerRound: 400,
		Seed:          5,
	}
	redundant, err := FindRedundantFences(prog, cfg, 800)
	if err != nil {
		t.Fatal(err)
	}
	if len(redundant) != 2 {
		t.Fatalf("found %d redundant fences, want 2 (the leading fence and the consumer's)", len(redundant))
	}
	// The required fence (between the data and flag stores in producer)
	// must NOT be among them.
	for _, l := range redundant {
		in := prog.InstrAt(l)
		if in == nil || in.Op != ir.OpFence {
			t.Fatalf("redundant label L%d is not a fence", l)
		}
		if in.Kind == ir.FenceStoreStore {
			t.Errorf("the required store-store fence was declared redundant")
		}
	}
	// Input program untouched.
	if got := len(prog.Fences()); got != 3 {
		t.Errorf("FindRedundantFences mutated the input (now %d fences)", got)
	}
}

func TestFindRedundantFencesRejectsBrokenProgram(t *testing.T) {
	// A program violating its spec with all fences present cannot be
	// analyzed for redundancy.
	src := strings.Replace(overFencedMP, "fence_ss();    // required", "// no fence", 1)
	prog, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Model: memmodel.PSO, Criterion: spec.MemorySafety, ExecsPerRound: 400, Seed: 5}
	if _, err := FindRedundantFences(prog, cfg, 800); err == nil {
		t.Fatal("under-fenced program accepted")
	}
}

func TestFindRedundantFencesCleanProgram(t *testing.T) {
	// A fence-free correct program reports nothing.
	prog, err := lang.Compile(`
int main() {
  print(1);
  return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Model: memmodel.PSO, Criterion: spec.MemorySafety, ExecsPerRound: 50, Seed: 1}
	redundant, err := FindRedundantFences(prog, cfg, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(redundant) != 0 {
		t.Errorf("redundant = %v on a fence-free program", redundant)
	}
}

// TestRemoveFencesTrailingFence: a fence that is the last instruction of a
// function used to be silently skipped by removeFences (idx+1 >= len(Code)),
// so FindRedundantFences could declare a fence redundant that its trial
// never actually removed. A trailing fence has no successor to retarget
// branches to, but with no branch targeting it the deletion is trivially
// safe — and must happen.
func TestRemoveFencesTrailingFence(t *testing.T) {
	prog, err := lang.Compile(overFencedMP)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Funcs["producer"]
	trailing := prog.NewLabel()
	f.Code = append(f.Code, ir.Instr{Label: trailing, Op: ir.OpFence, Kind: ir.FenceFull})
	f.Rebuild()
	before := len(f.Code)

	removeFences(prog, []ir.Label{trailing})
	if len(f.Code) != before-1 {
		t.Fatalf("trailing fence not removed: %d instructions, want %d", len(f.Code), before-1)
	}
	if f.IndexOf(trailing) >= 0 {
		t.Fatal("trailing fence label still resolves after removal")
	}
	if last := &f.Code[len(f.Code)-1]; last.Op != ir.OpRet {
		t.Fatalf("function no longer ends in ret after removal: %v", last.Op)
	}
}

// TestRemoveFencesTrailingFenceBranchTarget: a trailing fence that is a
// branch target cannot be removed (there is no fallthrough to retarget the
// branch to); removeFences must keep it rather than leave a dangling
// branch or crash.
func TestRemoveFencesTrailingFenceBranchTarget(t *testing.T) {
	p := ir.NewProgram()
	l0, l1, l2 := p.NewLabel(), p.NewLabel(), p.NewLabel()
	f := &ir.Func{Name: "main", NumRegs: 1, Code: []ir.Instr{
		{Label: l0, Op: ir.OpConst, Dst: 0, Imm: 1},
		{Label: l1, Op: ir.OpBr, Target: l2},
		{Label: l2, Op: ir.OpFence, Kind: ir.FenceFull},
	}}
	if err := p.AddFunc(f); err != nil {
		t.Fatal(err)
	}

	removeFences(p, []ir.Label{l2})
	if f.IndexOf(l2) < 0 {
		t.Fatal("branch-targeted trailing fence was removed, leaving the branch dangling")
	}
	if f.Code[1].Target != l2 {
		t.Fatalf("branch retargeted to L%d although its fence target was kept", f.Code[1].Target)
	}
}

// TestFindRedundantFencesOverFencedChaseLev: take the fence-free SPSC-style
// program from core_test, insert the one required fence plus a gratuitous
// one, and check that exactly the gratuitous fence is reported.
func TestFindRedundantFencesOverFencedSPSC(t *testing.T) {
	p, storeItems, storeT := buildSPSC(t)
	if _, err := p.InsertFenceAfter(storeItems, ir.FenceStoreStore); err != nil {
		t.Fatal(err)
	}
	extra, err := p.InsertFenceAfter(storeT, ir.FenceStoreStore)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Model:         memmodel.PSO,
		Criterion:     spec.SeqConsistency,
		NewSpec:       spec.NewDeque,
		ExecsPerRound: 400,
		Seed:          11,
	}
	redundant, err := FindRedundantFences(p, cfg, 800)
	if err != nil {
		t.Fatal(err)
	}
	if len(redundant) != 1 || redundant[0] != extra {
		t.Errorf("redundant = %v, want exactly the post-T fence L%d", redundant, extra)
	}
}
