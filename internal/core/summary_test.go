package core

import (
	"math"
	"strings"
	"testing"
	"time"

	"dfence/internal/ir"
	"dfence/internal/sched"
	"dfence/internal/synth"
)

// TestSummarySnapshot pins the unified renderer's layout. cmd/dfence and
// cmd/experiments both print Result.Summary verbatim, so this snapshot is
// the contract that keeps the two front-ends identical: extend the
// expectation here when adding lines to Summary.
func TestSummarySnapshot(t *testing.T) {
	res := &Result{
		Rounds: []Round{
			{
				Executions: 1000, Violations: 40, DistinctClauses: 3, Predicates: 5,
				Inserted: []synth.InsertedFence{{After: 2, Label: 90, Kind: ir.FenceStoreStore, Func: "put"}},
				Wall:     42 * time.Millisecond, ExecsPerSec: 23809,
			},
			{
				Executions: 990, Violations: 0, Inconclusive: 12, Errors: 2, Skipped: 10,
				Wall: 17 * time.Millisecond, ExecsPerSec: 58235,
				StaticDelayPairs: 4, PrunedPredicates: 3, PruneFallbacks: 1,
			},
		},
		Outcome:           OutcomeConverged,
		Converged:         true,
		TotalExecutions:   1990,
		TotalInconclusive: 22,
		Fences:            []synth.InsertedFence{{After: 2, Label: 90, Kind: ir.FenceStoreStore, Func: "put"}},
		SynthesizedFences: 2,
		Redundant:         1,
		StaticCandidates:  9,
		StaticDelayPairs:  4,
		PrunedPredicates:  3,
		CacheHits:         1500,
		CacheMisses:       500,
		SolverTruncated:   true,
		WitnessViolation:  "assertion violation in thread 2 at L16",
	}
	want := strings.Join([]string{
		"rounds=2 executions=1990 converged=true outcome=converged inconclusive=22",
		"round 1: 40/1000 violations, 5 predicates, 3 clauses, 1 fences inserted in 42ms (23809 execs/s)",
		"round 2: 0/990 violations, 0 predicates, 0 clauses, 0 fences inserted in 17ms (58235 execs/s), 12 inconclusive (2 errored), 10 skipped, 98% conclusive, static: 4 delay pairs, 3 predicates pruned (1 fallbacks)",
		"static analysis: 9 candidate pairs, 4 on critical cycles; 3 dynamic predicates pruned",
		"fences inserted: 1 (synthesized 2, 1 pruned as redundant)",
		"  fence(st-st) in put after L2",
		"exec cache: 1500 hits, 500 misses (75% hit rate)",
		"solver enumeration truncated by budget (repairs best-effort, not provably minimal)",
		"witness violation: assertion violation in thread 2 at L16",
	}, "\n")
	if got := res.Summary(); got != want {
		t.Errorf("Summary drifted from the snapshot.\ngot:\n%s\n\nwant:\n%s", got, want)
	}
}

// TestSummaryUnfixable pins the unfixable/exec-error variant of the
// renderer, including the source-located fence description used when the
// Result carries its program.
func TestSummaryUnfixable(t *testing.T) {
	res := &Result{
		Rounds: []Round{{Executions: 100, Violations: 100, Wall: time.Millisecond, ExecsPerSec: 100000}},
		Outcome: OutcomeUnfixable, Unfixable: true,
		UnfixableExample: "history not accepted: t1:put(1)",
		TotalExecutions:  100,
		ExecErrors:       []*sched.ExecError{{Index: 7, Seed: 8, Panic: "boom"}},
	}
	got := res.Summary()
	for _, want := range []string{
		"outcome=unfixable",
		"UNFIXABLE (history not accepted: t1:put(1))",
		"fences inserted: 0",
		"exec error:",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("Summary missing %q:\n%s", want, got)
		}
	}
}

// TestExecRate is the regression test for the sub-millisecond-round bug:
// Round.ExecsPerSec used to report 0 (and the guard against it could
// yield +Inf) when a tiny round's measured wall time was 0. The rate must
// be finite and positive whenever executions ran.
func TestExecRate(t *testing.T) {
	cases := []struct {
		execs int
		wall  time.Duration
	}{
		{500, 0},                    // coarse clock: measured zero
		{500, -time.Nanosecond},     // monotonic anomaly
		{1, time.Nanosecond},        // sub-microsecond round
		{1000, 500 * time.Nanosecond},
		{1000, time.Second},
	}
	for _, c := range cases {
		got := execRate(c.execs, c.wall)
		if got <= 0 || math.IsInf(got, 0) || math.IsNaN(got) {
			t.Errorf("execRate(%d, %v) = %v, want finite positive", c.execs, c.wall, got)
		}
	}
	if got := execRate(0, 0); got != 0 {
		t.Errorf("execRate(0, 0) = %v, want 0", got)
	}
	if got := execRate(1000, time.Second); got != 1000 {
		t.Errorf("execRate(1000, 1s) = %v, want 1000", got)
	}
	// The clamp bounds the rate at execs-per-microsecond.
	if got, max := execRate(500, 0), 500*1e6; got != max {
		t.Errorf("execRate(500, 0) = %v, want the 1µs-clamped %v", got, max)
	}
}
