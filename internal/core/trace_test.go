package core

import (
	"bytes"
	"testing"

	"dfence/internal/trace"
)

// TestTracingDisabledIdentical: span tracing is pure observation — a run
// with a tracer attached must produce a bit-identical Result to one
// without, at any worker count. (The telemetry twin of this test is
// TestTelemetryDisabledIdentical; the normalization notes there apply.)
func TestTracingDisabledIdentical(t *testing.T) {
	p, _, _ := buildSPSC(t)
	for _, workers := range []int{1, 4} {
		bare, err := Synthesize(p.Clone(), synthConfig(func(c *Config) {
			c.Workers = workers
		}))
		if err != nil {
			t.Fatal(err)
		}
		tracer := trace.New(trace.Options{Lanes: workers})
		traced, err := Synthesize(p.Clone(), synthConfig(func(c *Config) {
			c.Workers = workers
			c.Tracer = tracer
		}))
		if err != nil {
			t.Fatal(err)
		}
		if bt, tt := bare.CacheHits+bare.CacheMisses, traced.CacheHits+traced.CacheMisses; bt != tt {
			t.Errorf("workers=%d: total cache lookups differ: bare %d, traced %d", workers, bt, tt)
		}
		for _, res := range []*Result{bare, traced} {
			res.CacheHits, res.CacheMisses = 0, 0
			for i := range res.Rounds {
				res.Rounds[i].Wall, res.Rounds[i].ExecsPerSec = 0, 0
			}
		}
		if bare.Summary() != traced.Summary() {
			t.Errorf("workers=%d: tracing changed the result:\nbare:\n%s\n\ntraced:\n%s",
				workers, bare.Summary(), traced.Summary())
		}

		// The traced run must actually have recorded the span hierarchy,
		// and its export must survive the strict reader.
		d := tracer.Snapshot()
		var haveRun, haveRound, haveCollect, haveExecs bool
		for _, ev := range d.TraceEvents {
			switch ev.Name {
			case "run":
				haveRun = true
			case "round":
				haveRound = true
			case "collect":
				haveCollect = true
			}
		}
		for _, ln := range d.Other.Lanes {
			for _, agg := range ln.Portfolio {
				if agg.Execs > 0 {
					haveExecs = true
				}
			}
		}
		if !haveRun || !haveRound || !haveCollect || !haveExecs {
			t.Errorf("workers=%d: trace missing spans: run=%v round=%v collect=%v execs=%v",
				workers, haveRun, haveRound, haveCollect, haveExecs)
		}
		var buf bytes.Buffer
		if err := tracer.WriteJSON(&buf); err != nil {
			t.Fatalf("workers=%d: WriteJSON: %v", workers, err)
		}
		if _, err := trace.Read(bytes.NewReader(buf.Bytes())); err != nil {
			t.Errorf("workers=%d: exported trace fails the strict reader: %v", workers, err)
		}
	}
}

// TestTracingDisabledZeroAlloc: the per-execution trace hooks on the hot
// path must not allocate when no tracer is attached (nil receiver).
func TestTracingDisabledZeroAlloc(t *testing.T) {
	var tr *trace.Tracer
	allocs := testing.AllocsPerRun(200, func() {
		sp := tr.Begin(0, trace.SpanExec, 1)
		tr.ExecDone(1, 3, 0, 10, 8, 2, 99)
		tr.Instant(1, trace.InstantCacheHit, 0, 0)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocates %.1f per execution; want 0", allocs)
	}
}

// TestMaxItersDeterministicCutoff: MaxItersPerExec is part of the
// deterministic configuration — the same budget yields the same Result
// at different worker counts, and a budget small enough to trip turns
// executions inconclusive rather than changing verdicts.
func TestMaxItersDeterministicCutoff(t *testing.T) {
	p, _, _ := buildSPSC(t)
	var keys []string
	for _, workers := range []int{1, 4} {
		res, err := Synthesize(p.Clone(), synthConfig(func(c *Config) {
			c.Workers = workers
			c.MaxItersPerExec = 20
		}))
		if err != nil {
			t.Fatal(err)
		}
		res.CacheHits, res.CacheMisses = 0, 0
		for i := range res.Rounds {
			res.Rounds[i].Wall, res.Rounds[i].ExecsPerSec = 0, 0
		}
		keys = append(keys, res.Summary())
		var inconclusive int
		for _, r := range res.Rounds {
			inconclusive += r.Inconclusive
		}
		if inconclusive == 0 {
			t.Errorf("workers=%d: a 20-iteration budget tripped no executions", workers)
		}
	}
	if keys[0] != keys[1] {
		t.Errorf("MaxItersPerExec broke worker-count determinism:\nw=1:\n%s\n\nw=4:\n%s", keys[0], keys[1])
	}
}
