package spec

import (
	"fmt"
	"sort"
	"strconv"
)

// Sequential is an executable sequential specification (paper §5.2:
// "Checking linearizability or sequential consistency requires a semantic
// sequential specification of the algorithm"). Apply checks whether the
// given completed operation, with its recorded return value, is legal in
// the current state and advances the state if so. Specifications are
// reusable across algorithms: the Deque spec below validates all five
// WSQs, the Queue spec both Michael-Scott queues, and so on.
type Sequential interface {
	// Apply returns whether op (with its recorded result) is legal here,
	// mutating the state if legal. If illegal the state is unchanged.
	Apply(op Op) bool
	// Clone returns an independent copy.
	Clone() Sequential
	// Key returns a canonical encoding of the state for memoization.
	Key() string
}

// --- work-stealing deque ---

// Deque is the sequential specification of a work-stealing queue:
// put(v) pushes at the tail; take() pops the tail; steal() pops the head;
// take and steal return EmptyVal on an empty deque.
type Deque struct {
	items []int64
}

// NewDeque returns an empty deque specification.
func NewDeque() Sequential { return &Deque{} }

// Apply implements Sequential.
func (d *Deque) Apply(op Op) bool {
	switch op.Name {
	case "steal_abort":
		return true // aborted steal (see RelaxStealAborts): no effect
	case "put":
		if len(op.Args) != 1 {
			return false
		}
		d.items = append(d.items, op.Args[0])
		return true
	case "take":
		if !op.HasRet {
			return false
		}
		if len(d.items) == 0 {
			return op.Ret == EmptyVal
		}
		if op.Ret != d.items[len(d.items)-1] {
			return false
		}
		d.items = d.items[:len(d.items)-1]
		return true
	case "steal":
		if !op.HasRet {
			return false
		}
		if len(d.items) == 0 {
			return op.Ret == EmptyVal
		}
		if op.Ret != d.items[0] {
			return false
		}
		d.items = d.items[1:]
		return true
	}
	return false
}

// Clone implements Sequential.
func (d *Deque) Clone() Sequential {
	return &Deque{items: append([]int64(nil), d.items...)}
}

// Key implements Sequential.
func (d *Deque) Key() string { return encodeInts(d.items) }

// --- WSQ end-discipline variants ---

// WSQDiscipline configures which end take and steal remove from, covering
// the three work-stealing families of the paper's Table 2: the double-
// ended discipline (Chase-Lev, THE, Anchor WSQ: take at the tail, steal at
// the head), the LIFO discipline (put/take/steal all at the tail), and the
// FIFO discipline (put at the tail, take and steal at the head).
type WSQDiscipline struct {
	items       []int64
	takeAtHead  bool // take pops the head instead of the tail
	stealAtHead bool
}

// NewLIFOWSQ returns the spec where put/take/steal all work at the tail.
func NewLIFOWSQ() Sequential { return &WSQDiscipline{} }

// NewFIFOWSQ returns the spec where take and steal both work at the head.
func NewFIFOWSQ() Sequential { return &WSQDiscipline{takeAtHead: true, stealAtHead: true} }

// Apply implements Sequential.
func (w *WSQDiscipline) Apply(op Op) bool {
	switch op.Name {
	case "steal_abort":
		return true // aborted steal (see RelaxStealAborts): no effect
	case "put":
		if len(op.Args) != 1 {
			return false
		}
		w.items = append(w.items, op.Args[0])
		return true
	case "take", "steal":
		if !op.HasRet {
			return false
		}
		head := w.takeAtHead
		if op.Name == "steal" {
			head = w.stealAtHead
		}
		if len(w.items) == 0 {
			return op.Ret == EmptyVal
		}
		if head {
			if op.Ret != w.items[0] {
				return false
			}
			w.items = w.items[1:]
		} else {
			if op.Ret != w.items[len(w.items)-1] {
				return false
			}
			w.items = w.items[:len(w.items)-1]
		}
		return true
	}
	return false
}

// Clone implements Sequential.
func (w *WSQDiscipline) Clone() Sequential {
	return &WSQDiscipline{
		items:       append([]int64(nil), w.items...),
		takeAtHead:  w.takeAtHead,
		stealAtHead: w.stealAtHead,
	}
}

// Key implements Sequential.
func (w *WSQDiscipline) Key() string { return encodeInts(w.items) }

// --- FIFO queue ---

// Queue is the sequential specification of a FIFO queue: enqueue(v) at the
// tail, dequeue() from the head returning EmptyVal when empty.
type Queue struct {
	items []int64
}

// NewQueue returns an empty queue specification.
func NewQueue() Sequential { return &Queue{} }

// Apply implements Sequential.
func (q *Queue) Apply(op Op) bool {
	switch op.Name {
	case "enqueue":
		if len(op.Args) != 1 {
			return false
		}
		q.items = append(q.items, op.Args[0])
		return true
	case "dequeue":
		if !op.HasRet {
			return false
		}
		if len(q.items) == 0 {
			return op.Ret == EmptyVal
		}
		if op.Ret != q.items[0] {
			return false
		}
		q.items = q.items[1:]
		return true
	}
	return false
}

// Clone implements Sequential.
func (q *Queue) Clone() Sequential {
	return &Queue{items: append([]int64(nil), q.items...)}
}

// Key implements Sequential.
func (q *Queue) Key() string { return encodeInts(q.items) }

// --- set ---

// Set is the sequential specification of a set of integers: add(v) returns
// 1 if v was absent (and inserts it), remove(v) returns 1 if v was present
// (and deletes it), contains(v) returns 1 iff present.
type Set struct {
	members map[int64]bool
}

// NewSet returns an empty set specification.
func NewSet() Sequential { return &Set{members: map[int64]bool{}} }

// Apply implements Sequential.
func (s *Set) Apply(op Op) bool {
	if len(op.Args) != 1 || !op.HasRet {
		return false
	}
	v := op.Args[0]
	switch op.Name {
	case "add":
		if s.members[v] {
			return op.Ret == 0
		}
		if op.Ret != 1 {
			return false
		}
		s.members[v] = true
		return true
	case "remove":
		if !s.members[v] {
			return op.Ret == 0
		}
		if op.Ret != 1 {
			return false
		}
		delete(s.members, v)
		return true
	case "contains":
		want := int64(0)
		if s.members[v] {
			want = 1
		}
		return op.Ret == want
	}
	return false
}

// Clone implements Sequential.
func (s *Set) Clone() Sequential {
	m := make(map[int64]bool, len(s.members))
	for k, v := range s.members {
		m[k] = v
	}
	return &Set{members: m}
}

// Key implements Sequential.
func (s *Set) Key() string {
	keys := make([]int64, 0, len(s.members))
	for k := range s.members {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return encodeInts(keys)
}

// --- memory allocator ---

// Alloc is the sequential specification of a memory allocator: malloc(sz)
// must return an address not currently allocated (0 signals exhaustion and
// is always legal), free(p) requires p to be a live allocation. This
// captures the §6.7 correctness notion: no two live blocks may share an
// address (a duplicate allocation is the allocator analogue of a lost
// update).
type Alloc struct {
	live map[int64]bool
}

// NewAlloc returns an allocator specification with no live blocks.
func NewAlloc() Sequential { return &Alloc{live: map[int64]bool{}} }

// Apply implements Sequential.
func (a *Alloc) Apply(op Op) bool {
	switch op.Name {
	case "malloc":
		if !op.HasRet {
			return false
		}
		if op.Ret == 0 {
			return true // exhaustion is always a legal answer
		}
		if a.live[op.Ret] {
			return false // duplicate allocation
		}
		a.live[op.Ret] = true
		return true
	case "free":
		if len(op.Args) != 1 {
			return false
		}
		p := op.Args[0]
		if !a.live[p] {
			return false
		}
		delete(a.live, p)
		return true
	}
	return false
}

// Clone implements Sequential.
func (a *Alloc) Clone() Sequential {
	m := make(map[int64]bool, len(a.live))
	for k, v := range a.live {
		m[k] = v
	}
	return &Alloc{live: m}
}

// Key implements Sequential.
func (a *Alloc) Key() string {
	keys := make([]int64, 0, len(a.live))
	for k := range a.live {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return encodeInts(keys)
}

func encodeInts(vs []int64) string {
	return string(appendInts(make([]byte, 0, 12*len(vs)), vs))
}

// appendInts is the alloc-free form of encodeInts: the checker's DFS
// builds state keys into a reused scratch buffer, so slice-backed
// specifications implement keyAppender through it and skip the Key()
// string materialization entirely.
func appendInts(dst []byte, vs []int64) []byte {
	for _, v := range vs {
		dst = strconv.AppendInt(dst, v, 10)
		dst = append(dst, ',')
	}
	return dst
}

// copierFrom is the optional recycling path of Sequential: overwrite the
// receiver with src's state without allocating (src must be the same
// concrete type; reports false otherwise). Used by the checker's DFS to
// reuse dead states instead of Clone-ing fresh ones.
type copierFrom interface {
	copyFrom(src Sequential) bool
}

func (d *Deque) copyFrom(src Sequential) bool {
	o, ok := src.(*Deque)
	if !ok {
		return false
	}
	d.items = append(d.items[:0], o.items...)
	return true
}

func (w *WSQDiscipline) copyFrom(src Sequential) bool {
	o, ok := src.(*WSQDiscipline)
	if !ok {
		return false
	}
	w.items = append(w.items[:0], o.items...)
	w.takeAtHead, w.stealAtHead = o.takeAtHead, o.stealAtHead
	return true
}

func (q *Queue) copyFrom(src Sequential) bool {
	o, ok := src.(*Queue)
	if !ok {
		return false
	}
	q.items = append(q.items[:0], o.items...)
	return true
}

func (s *Set) copyFrom(src Sequential) bool {
	o, ok := src.(*Set)
	if !ok {
		return false
	}
	clear(s.members)
	for k, v := range o.members {
		s.members[k] = v
	}
	return true
}

func (a *Alloc) copyFrom(src Sequential) bool {
	o, ok := src.(*Alloc)
	if !ok {
		return false
	}
	clear(a.live)
	for k, v := range o.live {
		a.live[k] = v
	}
	return true
}

// keyAppender is the optional fast path of Sequential: append the
// canonical state encoding (identical to Key()) to dst without
// allocating. The checker falls back to Key() when absent.
type keyAppender interface {
	appendKey(dst []byte) []byte
}

func (d *Deque) appendKey(dst []byte) []byte         { return appendInts(dst, d.items) }
func (w *WSQDiscipline) appendKey(dst []byte) []byte { return appendInts(dst, w.items) }
func (q *Queue) appendKey(dst []byte) []byte         { return appendInts(dst, q.items) }

// ByName returns a fresh-spec constructor by specification name
// ("deque", "queue", "set", "alloc").
func ByName(name string) (func() Sequential, error) {
	switch name {
	case "deque":
		return NewDeque, nil
	case "wsq-lifo":
		return NewLIFOWSQ, nil
	case "wsq-fifo":
		return NewFIFOWSQ, nil
	case "queue":
		return NewQueue, nil
	case "set":
		return NewSet, nil
	case "alloc":
		return NewAlloc, nil
	}
	return nil, fmt.Errorf("spec: unknown sequential specification %q", name)
}
