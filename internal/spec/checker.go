package spec

import (
	"reflect"

	"dfence/internal/interp"
)

// Checker is a reusable history checker: it owns the sequentialization
// search's memo table, queue partition, key scratch, recycled spec
// states, and operation buffers, so a caller that judges many histories
// (the synthesis engine judges thousands per round) pays the allocations
// once instead of per history. The zero value is ready to use. A Checker
// is not safe for concurrent use — the engine gives each batch worker its
// own (see the worker-ownership invariant in internal/sched).
//
// Results are identical to the package-level IsSequentiallyConsistent /
// IsLinearizable / Check functions, which simply run on a throwaway
// Checker.
type Checker struct {
	// DisableAutomaton forces the legacy string-keyed dfs instead of the
	// compiled-automaton search (see automaton.go). Verdicts are
	// identical either way — the knob exists for differential tests and
	// benchmarks.
	DisableAutomaton bool

	queues   [][]Op
	idx      []int
	memo     map[string]bool // legacy path: failed (progress, state) keys
	keyBuf   []byte
	free     []Sequential // dead states recycled by clone/recycle
	realTime bool

	// automaton path (automaton.go)
	aut     automaton
	imemo   map[autoKey]bool // failed (packed progress, state id) pairs
	strides []uint64         // mixed-radix strides of the queue partition
	oidbuf  []int32          // interned op ids, flat, parallel to qbuf
	oqueues [][]int32        // per-thread views into oidbuf, parallel to queues

	// partition scratch (check)
	qbuf   []Op
	counts []int
	offs   []int

	// operation-extraction scratch (CompleteOps / RelaxStealAborts)
	opsBuf   []Op
	relaxBuf []Op
	pend     [][]int // per-thread FIFO of indices into opsBuf
}

// CompleteOps is CompleteOps with the checker's reused buffers. The
// returned slice aliases checker-owned storage and is valid until the
// next CompleteOps call.
func (c *Checker) CompleteOps(events []interp.Event) []Op {
	for i := range c.pend {
		c.pend[i] = c.pend[i][:0]
	}
	ops := c.opsBuf[:0]
	for i, e := range events {
		switch e.Kind {
		case interp.EventInvoke:
			ops = append(ops, Op{
				Thread: e.Thread,
				Name:   e.Op,
				Args:   e.Args,
				Inv:    i,
				Res:    -1,
			})
			for len(c.pend) <= e.Thread {
				c.pend = append(c.pend, nil)
			}
			c.pend[e.Thread] = append(c.pend[e.Thread], len(ops)-1)
		case interp.EventResponse:
			if e.Thread >= len(c.pend) || len(c.pend[e.Thread]) == 0 {
				continue // stray response; ignore defensively
			}
			idx := c.pend[e.Thread][0]
			c.pend[e.Thread] = c.pend[e.Thread][1:]
			ops[idx].Ret = e.Ret
			ops[idx].HasRet = e.HasRet
			ops[idx].Res = i
		}
	}
	// Drop incomplete ops (in place: the write index trails the read).
	out := ops[:0]
	for _, o := range ops {
		if o.Res >= 0 {
			out = append(out, o)
		}
	}
	c.opsBuf = ops
	return out
}

// RelaxStealAborts is RelaxStealAborts with the checker's reused output
// buffer; same semantics (partners are scanned in the unmodified input).
// The returned slice is valid until the next RelaxStealAborts call.
func (c *Checker) RelaxStealAborts(ops []Op) []Op {
	out := append(c.relaxBuf[:0], ops...)
	c.relaxBuf = out
	for i := range out {
		o := &out[i]
		if o.Name != "steal" || !o.HasRet || o.Ret != EmptyVal {
			continue
		}
		for j := range ops {
			if j == i {
				continue
			}
			p := &ops[j]
			if p.Name != "steal" && p.Name != "take" {
				continue
			}
			if p.Res > o.Inv && o.Res > p.Inv {
				o.Name = "steal_abort"
				break
			}
		}
	}
	return out
}

// Check is Check with the checker's reused search state.
func (c *Checker) Check(crit Criterion, ops []Op, newSpec func() Sequential, checkGarbage bool) bool {
	if checkGarbage && !NoGarbage(ops) {
		return false
	}
	switch crit {
	case MemorySafety:
		return true
	case SeqConsistency:
		return c.check(ops, newSpec, false)
	case Linearizability:
		return c.check(ops, newSpec, true)
	}
	return true
}

// check partitions ops per thread (a stable counting partition into the
// reused qbuf — the alloc-free equivalent of PerThread) and runs the
// memoized sequentialization DFS.
func (c *Checker) check(ops []Op, newSpec func() Sequential, realTime bool) bool {
	maxTid := -1
	for i := range ops {
		if ops[i].Thread > maxTid {
			maxTid = ops[i].Thread
		}
	}
	c.counts = c.counts[:0]
	c.offs = c.offs[:0]
	for t := 0; t <= maxTid; t++ {
		c.counts = append(c.counts, 0)
		c.offs = append(c.offs, 0)
	}
	for i := range ops {
		c.counts[ops[i].Thread]++
	}
	for t, off := 0, 0; t <= maxTid; t++ {
		c.offs[t] = off
		off += c.counts[t]
	}
	if cap(c.qbuf) < len(ops) {
		c.qbuf = make([]Op, len(ops))
	}
	c.qbuf = c.qbuf[:len(ops)]
	for i := range ops {
		t := ops[i].Thread
		c.qbuf[c.offs[t]] = ops[i]
		c.offs[t]++
	}
	c.queues = c.queues[:0]
	c.idx = c.idx[:0]
	for t, start := 0, 0; t <= maxTid; t++ {
		n := c.counts[t]
		if n == 0 {
			continue
		}
		c.queues = append(c.queues, c.qbuf[start:start+n])
		c.idx = append(c.idx, 0)
		start += n
	}
	c.realTime = realTime
	init := newSpec()
	if c.DisableAutomaton || !c.compileProgress() {
		if c.memo == nil {
			c.memo = make(map[string]bool)
		} else {
			clear(c.memo) // buckets are retained: the next search reuses them
		}
		return c.dfs(init)
	}
	c.aut.ensure(reflect.TypeOf(init))
	// Intern each queue's ops once; the DFS then only touches ids.
	c.oidbuf = c.oidbuf[:0]
	for _, q := range c.queues {
		for i := range q {
			c.oidbuf = append(c.oidbuf, c.aut.internOp(q[i]))
		}
	}
	c.oqueues = c.oqueues[:0]
	for off, i := 0, 0; i < len(c.queues); i++ {
		n := len(c.queues[i])
		c.oqueues = append(c.oqueues, c.oidbuf[off:off+n])
		off += n
	}
	sid, fresh := c.aut.intern(init)
	if !fresh {
		c.recycle(init)
	}
	if c.imemo == nil {
		c.imemo = make(map[autoKey]bool)
	} else {
		clear(c.imemo) // per-check: progress packing depends on the queues
	}
	return c.dfsAuto(sid)
}
