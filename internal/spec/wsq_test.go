package spec

import "testing"

func TestLIFOWSQDiscipline(t *testing.T) {
	s := NewLIFOWSQ()
	steps := []struct {
		op   Op
		want bool
	}{
		{op(0, "put", 0, 1, []int64{1}, 0, false), true},
		{op(0, "put", 2, 3, []int64{2}, 0, false), true},
		// LIFO: take AND steal pop the tail.
		{op(1, "steal", 4, 5, nil, 2, true), true},
		{op(0, "take", 6, 7, nil, 1, true), true},
		{op(0, "take", 8, 9, nil, EmptyVal, true), true},
	}
	for i, c := range steps {
		if got := s.Apply(c.op); got != c.want {
			t.Errorf("step %d (%v): %v, want %v", i, c.op, got, c.want)
		}
	}
	// steal of the head is illegal under LIFO.
	s2 := NewLIFOWSQ()
	s2.Apply(op(0, "put", 0, 1, []int64{1}, 0, false))
	s2.Apply(op(0, "put", 2, 3, []int64{2}, 0, false))
	if s2.Apply(op(1, "steal", 4, 5, nil, 1, true)) {
		t.Error("LIFO steal returned the head; spec accepted it")
	}
}

func TestFIFOWSQDiscipline(t *testing.T) {
	s := NewFIFOWSQ()
	s.Apply(op(0, "put", 0, 1, []int64{1}, 0, false))
	s.Apply(op(0, "put", 2, 3, []int64{2}, 0, false))
	// FIFO: take AND steal pop the head.
	if !s.Apply(op(0, "take", 4, 5, nil, 1, true)) {
		t.Error("FIFO take of head rejected")
	}
	if !s.Apply(op(1, "steal", 6, 7, nil, 2, true)) {
		t.Error("FIFO steal of head rejected")
	}
	if !s.Apply(op(1, "steal", 8, 9, nil, EmptyVal, true)) {
		t.Error("empty steal rejected")
	}
	s2 := NewFIFOWSQ()
	s2.Apply(op(0, "put", 0, 1, []int64{1}, 0, false))
	s2.Apply(op(0, "put", 2, 3, []int64{2}, 0, false))
	if s2.Apply(op(0, "take", 4, 5, nil, 2, true)) {
		t.Error("FIFO take returned the tail; spec accepted it")
	}
}

func TestWSQDisciplineCloneIndependence(t *testing.T) {
	s := NewFIFOWSQ()
	s.Apply(op(0, "put", 0, 1, []int64{1}, 0, false))
	c := s.Clone()
	if !c.Apply(op(0, "take", 2, 3, nil, 1, true)) {
		t.Fatal("clone take failed")
	}
	if s.Key() == c.Key() {
		t.Error("keys equal after divergence")
	}
	// original still holds the item
	if !s.Apply(op(0, "take", 4, 5, nil, 1, true)) {
		t.Error("clone mutation leaked into original")
	}
}

func TestStealAbortAcceptedByAllWSQSpecs(t *testing.T) {
	for _, mk := range []func() Sequential{NewDeque, NewLIFOWSQ, NewFIFOWSQ} {
		s := mk()
		if !s.Apply(Op{Name: "steal_abort", Thread: 1, Inv: 0, Res: 1}) {
			t.Error("steal_abort rejected")
		}
	}
}

func TestRelaxStealAbortsOnlyContendedEmpties(t *testing.T) {
	// steal()=EMPTY overlapping a take -> abort; a later lone steal()=EMPTY
	// stays strict; steal with a value untouched.
	ops := []Op{
		{Thread: 0, Name: "take", Ret: 5, HasRet: true, Inv: 0, Res: 3},
		{Thread: 1, Name: "steal", Ret: EmptyVal, HasRet: true, Inv: 1, Res: 2}, // overlaps take
		{Thread: 1, Name: "steal", Ret: EmptyVal, HasRet: true, Inv: 4, Res: 5}, // lone
		{Thread: 1, Name: "steal", Ret: 7, HasRet: true, Inv: 6, Res: 7},        // value
	}
	out := RelaxStealAborts(ops)
	if out[1].Name != "steal_abort" {
		t.Errorf("contended empty steal not relaxed: %v", out[1])
	}
	if out[2].Name != "steal" {
		t.Errorf("lone empty steal wrongly relaxed: %v", out[2])
	}
	if out[3].Name != "steal" {
		t.Errorf("value steal wrongly relaxed: %v", out[3])
	}
	// input untouched
	if ops[1].Name != "steal" {
		t.Error("RelaxStealAborts mutated its input")
	}
}

func TestRelaxStealAbortsOverlappingSteals(t *testing.T) {
	// Two overlapping empty steals relax each other.
	ops := []Op{
		{Thread: 1, Name: "steal", Ret: EmptyVal, HasRet: true, Inv: 0, Res: 3},
		{Thread: 2, Name: "steal", Ret: EmptyVal, HasRet: true, Inv: 1, Res: 2},
	}
	out := RelaxStealAborts(ops)
	if out[0].Name != "steal_abort" || out[1].Name != "steal_abort" {
		t.Errorf("mutually overlapping empty steals not relaxed: %v", out)
	}
}

func TestRelaxPreservesFig2c(t *testing.T) {
	// The non-overlapping Fig. 2c empty steal must stay strict so the
	// linearizability violation is still detected.
	ops := []Op{
		{Thread: 1, Name: "put", Args: []int64{1}, Inv: 0, Res: 1},
		{Thread: 2, Name: "steal", Ret: EmptyVal, HasRet: true, Inv: 2, Res: 3},
	}
	out := RelaxStealAborts(ops)
	if out[1].Name != "steal" {
		t.Fatal("Fig. 2c steal was relaxed — the violation would be masked")
	}
	if IsLinearizable(out, NewDeque) {
		t.Error("Fig. 2c history judged linearizable after relaxation")
	}
}
