package spec

import "testing"

// TestParseCriterionRoundTrip pins ParseCriterion(c.String()) == c for
// every defined criterion: String() produces the long names
// ("memory-safety", ...) and ParseCriterion must keep accepting them, or
// journals written by one version become unreadable by the next.
func TestParseCriterionRoundTrip(t *testing.T) {
	for _, c := range []Criterion{MemorySafety, SeqConsistency, Linearizability} {
		got, ok := ParseCriterion(c.String())
		if !ok {
			t.Fatalf("ParseCriterion(%q) rejected a defined criterion", c.String())
		}
		if got != c {
			t.Errorf("ParseCriterion(%v.String()) = %v, want %v", c, got, c)
		}
	}
	if _, ok := ParseCriterion("serializability"); ok {
		t.Error("ParseCriterion accepted an undefined criterion")
	}
}

func TestParseCriterionCaseInsensitive(t *testing.T) {
	for _, in := range []string{"SC", "Sc", "LIN", "Safety", "Memory-Safety"} {
		if _, ok := ParseCriterion(in); !ok {
			t.Errorf("ParseCriterion(%q) = !ok, want case-insensitive accept", in)
		}
	}
}
