package spec

import (
	"encoding/binary"
	"reflect"
)

// The sequentialization search spends its time asking two questions per
// node: "have I failed from this (progress, spec state) before?" and
// "does this operation apply in this state, and what state results?".
// The string-memo dfs in check.go answers both by re-encoding the spec
// state into a byte key at every node and by clone+Apply on every branch.
//
// The automaton below compiles the answers instead: reachable spec
// states are interned once into dense int32 ids (the canonical clone is
// frozen and owned by the automaton), operations are interned on the
// fields Apply actually consults (Name, Args, Ret, HasRet), and each
// (state id, op id) transition is computed by clone+Apply exactly once
// and then served from a flat map. The DFS then walks integer ids, and
// its memo key is a comparable struct of (mixed-radix progress index,
// state id) — no per-node string allocation at all.
//
// The automaton persists across checks on a reused Checker: state
// identity and transitions are history-independent facts about the
// specification, so a synthesis round that judges thousands of histories
// over the same data structure amortizes every Apply. It composes with
// the verdict-by-history cache upstream: that cache removes repeated
// *histories*, this one removes repeated *spec work* across distinct
// histories. Verdicts are identical to the legacy path (differentially
// tested): interning maps equal-key states to one id exactly as the
// string memo treated them as one entry.
//
// Capacity is bounded generationally: when the tables outgrow their caps
// the automaton is discarded between checks (never mid-search, which
// would invalidate ids held on the DFS stack) and relearned. A type
// guard resets it when a Checker is reused with a different
// specification type, since canonical keys are only unique within one
// type.
const (
	maxAutomatonStates = 1 << 15
	maxAutomatonTrans  = 1 << 17
)

// illegalTransition marks a cached (state, op) pair Apply rejected.
const illegalTransition = int32(-1)

type automaton struct {
	typ    reflect.Type     // spec type the tables were built for
	states []Sequential     // id -> frozen canonical state (never mutated)
	ids    map[string]int32 // canonical state key -> id
	ops    []Op             // id -> representative op (Args copied, stable)
	opIDs  map[string]int32 // canonical op key -> id
	trans  map[uint64]int32 // stateID<<32|opID -> next id, or illegalTransition
	keyBuf []byte
}

// ensure prepares the automaton for a check over spec type t, flushing
// the learned tables when the type changed or a size cap tripped.
func (a *automaton) ensure(t reflect.Type) {
	if a.ids == nil || a.typ != t ||
		len(a.states) > maxAutomatonStates || len(a.trans) > maxAutomatonTrans {
		a.reset(t)
	}
}

func (a *automaton) reset(t reflect.Type) {
	a.typ = t
	a.states = a.states[:0]
	a.ops = a.ops[:0]
	if a.ids == nil {
		a.ids = make(map[string]int32)
		a.opIDs = make(map[string]int32)
		a.trans = make(map[uint64]int32)
	} else {
		clear(a.ids)
		clear(a.opIDs)
		clear(a.trans)
	}
}

// intern returns the dense id of state, registering it (and taking
// ownership of it — it must never be mutated afterwards) when unseen.
// fresh reports whether ownership was taken; if false the caller still
// owns state and may recycle it.
func (a *automaton) intern(state Sequential) (id int32, fresh bool) {
	b := a.keyBuf[:0]
	if ka, ok := state.(keyAppender); ok {
		b = ka.appendKey(b)
	} else {
		b = append(b, state.Key()...)
	}
	a.keyBuf = b
	if id, ok := a.ids[string(b)]; ok {
		return id, false
	}
	id = int32(len(a.states))
	a.states = append(a.states, state)
	a.ids[string(b)] = id
	return id, true
}

// internOp returns the dense id of op's Apply-relevant projection. The
// stored representative deep-copies Args: callers hand in ops whose Args
// alias reused event buffers.
func (a *automaton) internOp(op Op) int32 {
	b := a.keyBuf[:0]
	b = binary.AppendUvarint(b, uint64(len(op.Name)))
	b = append(b, op.Name...)
	b = binary.AppendUvarint(b, uint64(len(op.Args)))
	for _, v := range op.Args {
		b = binary.AppendVarint(b, v)
	}
	if op.HasRet {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = binary.AppendVarint(b, op.Ret)
	a.keyBuf = b
	if id, ok := a.opIDs[string(b)]; ok {
		return id
	}
	id := int32(len(a.ops))
	rep := Op{Name: op.Name, Ret: op.Ret, HasRet: op.HasRet}
	if len(op.Args) > 0 {
		rep.Args = append([]int64(nil), op.Args...)
	}
	a.ops = append(a.ops, rep)
	a.opIDs[string(b)] = id
	return id
}

// step returns the successor of state sid under op oid, computing and
// caching the transition on first demand. ok is false when the op is
// illegal in the state. c supplies the clone/recycle free list.
func (a *automaton) step(c *Checker, sid, oid int32) (next int32, ok bool) {
	k := uint64(uint32(sid))<<32 | uint64(uint32(oid))
	if next, hit := a.trans[k]; hit {
		return next, next != illegalTransition
	}
	st := c.clone(a.states[sid])
	if !st.Apply(a.ops[oid]) {
		c.recycle(st)
		a.trans[k] = illegalTransition
		return 0, false
	}
	nid, fresh := a.intern(st)
	if !fresh {
		c.recycle(st)
	}
	a.trans[k] = nid
	return nid, true
}

// autoKey memoizes one failed search node: the mixed-radix encoding of
// the per-thread progress vector plus the interned spec-state id.
type autoKey struct {
	prog  uint64
	state int32
}

// compileProgress fills c.strides with the mixed-radix strides of the
// current queue partition (stride[i] = Π_{j<i} (len(queue_j)+1)), so a
// progress vector packs into one uint64. Reports false on overflow —
// histories that long fall back to the string-keyed dfs.
func (c *Checker) compileProgress() bool {
	c.strides = c.strides[:0]
	total := uint64(1)
	for i := range c.queues {
		c.strides = append(c.strides, total)
		n := uint64(len(c.queues[i])) + 1
		if total > (1<<62)/n {
			return false
		}
		total *= n
	}
	return true
}

// dfsAuto is dfs over the compiled automaton: same search, same memo
// semantics, but states are dense ids, successor states come from the
// transition table, and the memo key is a comparable struct.
func (c *Checker) dfsAuto(sid int32) bool {
	done := true
	var prog uint64
	for i := range c.queues {
		if c.idx[i] < len(c.queues[i]) {
			done = false
		}
		prog += uint64(c.idx[i]) * c.strides[i]
	}
	if done {
		return true
	}
	mk := autoKey{prog: prog, state: sid}
	if c.imemo[mk] {
		return false // known dead end
	}
	for i := range c.queues {
		if c.idx[i] >= len(c.queues[i]) {
			continue
		}
		op := c.queues[i][c.idx[i]]
		if c.realTime && !minimalInRealTime(c.queues, c.idx, i, op) {
			continue
		}
		next, ok := c.aut.step(c, sid, c.oqueues[i][c.idx[i]])
		if !ok {
			continue
		}
		c.idx[i]++
		hit := c.dfsAuto(next)
		c.idx[i]--
		if hit {
			return true
		}
	}
	c.imemo[mk] = true
	return false
}
