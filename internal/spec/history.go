// Package spec implements DFENCE's correctness specifications: extraction
// of operation histories from executions, executable sequential
// specifications of the analyzed data structures, and the two history
// criteria of the paper — operation-level sequential consistency and
// linearizability (§5.2, Specifications; Herlihy & Shavit Ch. 3.4–3.5).
//
// Operation-level sequential consistency: the history has some
// interleaving, preserving each thread's program order, that the
// sequential specification accepts.
//
// Linearizability: additionally, the interleaving must preserve the
// real-time order between non-overlapping operations.
package spec

import (
	"fmt"
	"strings"

	"dfence/internal/interp"
)

// EmptyVal is the conventional EMPTY return value used by the benchmark
// algorithms (take/steal/dequeue on an empty container).
const EmptyVal = -1

// Op is one completed operation extracted from a history: an invoke event
// matched with its response.
type Op struct {
	Thread int
	Name   string
	Args   []int64
	Ret    int64
	HasRet bool

	// Inv and Res are the global event indices of the invoke and response,
	// defining the real-time order used by linearizability.
	Inv, Res int
}

func (o Op) String() string {
	args := make([]string, len(o.Args))
	for i, a := range o.Args {
		args[i] = fmt.Sprint(a)
	}
	s := fmt.Sprintf("t%d:%s(%s)", o.Thread, o.Name, strings.Join(args, ","))
	if o.HasRet {
		s += fmt.Sprintf("=%d", o.Ret)
	}
	return s
}

// CompleteOps pairs invoke/response events into completed operations.
// Operations within a thread are sequential, so pairing is per-thread FIFO.
// Invokes with no response (possible only in cut-off executions) are
// dropped: an operation that never returned imposes no obligation on the
// history checkers we run (we only check completed executions).
func CompleteOps(events []interp.Event) []Op {
	pending := make(map[int][]int) // thread -> stack of indices into ops
	var ops []Op
	for i, e := range events {
		switch e.Kind {
		case interp.EventInvoke:
			ops = append(ops, Op{
				Thread: e.Thread,
				Name:   e.Op,
				Args:   e.Args,
				Inv:    i,
				Res:    -1,
			})
			pending[e.Thread] = append(pending[e.Thread], len(ops)-1)
		case interp.EventResponse:
			q := pending[e.Thread]
			if len(q) == 0 {
				continue // stray response; ignore defensively
			}
			idx := q[0]
			pending[e.Thread] = q[1:]
			ops[idx].Ret = e.Ret
			ops[idx].HasRet = e.HasRet
			ops[idx].Res = i
		}
	}
	// Drop incomplete ops.
	out := ops[:0]
	for _, o := range ops {
		if o.Res >= 0 {
			out = append(out, o)
		}
	}
	return out
}

// PerThread groups completed operations by thread, preserving program
// order, and returns the thread ids in ascending order.
func PerThread(ops []Op) (map[int][]Op, []int) {
	m := make(map[int][]Op)
	var order []int
	for _, o := range ops {
		if _, ok := m[o.Thread]; !ok {
			order = append(order, o.Thread)
		}
		m[o.Thread] = append(m[o.Thread], o)
	}
	// order is already ascending-by-first-occurrence; normalize to sorted.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && order[j-1] > order[j]; j-- {
			order[j-1], order[j] = order[j], order[j-1]
		}
	}
	return m, order
}
