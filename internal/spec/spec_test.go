package spec

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dfence/internal/interp"
)

// op builds a completed operation with explicit event indices.
func op(thread int, name string, inv, res int, args []int64, ret int64, hasRet bool) Op {
	return Op{Thread: thread, Name: name, Args: args, Ret: ret, HasRet: hasRet, Inv: inv, Res: res}
}

// serialOps lays out the given ops back to back (non-overlapping, in
// order), assigning event indices.
func serialOps(ops []Op) []Op {
	out := make([]Op, len(ops))
	for i, o := range ops {
		o.Inv = 2 * i
		o.Res = 2*i + 1
		out[i] = o
	}
	return out
}

func TestCompleteOpsPairing(t *testing.T) {
	events := []interp.Event{
		{Kind: interp.EventInvoke, Thread: 1, Op: "put", Args: []int64{5}},
		{Kind: interp.EventInvoke, Thread: 2, Op: "steal"},
		{Kind: interp.EventResponse, Thread: 1, Op: "put"},
		{Kind: interp.EventResponse, Thread: 2, Op: "steal", Ret: 5, HasRet: true},
		{Kind: interp.EventInvoke, Thread: 1, Op: "take"}, // never returns
	}
	ops := CompleteOps(events)
	if len(ops) != 2 {
		t.Fatalf("got %d completed ops, want 2: %v", len(ops), ops)
	}
	if ops[0].Name != "put" || ops[0].Inv != 0 || ops[0].Res != 2 {
		t.Errorf("put op wrong: %+v", ops[0])
	}
	if ops[1].Name != "steal" || ops[1].Ret != 5 || ops[1].Inv != 1 || ops[1].Res != 3 {
		t.Errorf("steal op wrong: %+v", ops[1])
	}
}

// --- sequential specifications ---

func TestDequeSpecSerial(t *testing.T) {
	d := NewDeque()
	steps := []struct {
		op   Op
		want bool
	}{
		{op(0, "put", 0, 1, []int64{1}, 0, false), true},
		{op(0, "put", 2, 3, []int64{2}, 0, false), true},
		{op(0, "take", 4, 5, nil, 2, true), true},  // tail
		{op(1, "steal", 6, 7, nil, 1, true), true}, // head
		{op(1, "steal", 8, 9, nil, EmptyVal, true), true},
		{op(0, "take", 10, 11, nil, 7, true), false}, // garbage
	}
	for i, s := range steps {
		if got := d.Apply(s.op); got != s.want {
			t.Errorf("step %d (%v): Apply = %v, want %v", i, s.op, got, s.want)
		}
	}
}

func TestDequeTakeWrongEnd(t *testing.T) {
	d := NewDeque()
	d.Apply(op(0, "put", 0, 1, []int64{1}, 0, false))
	d.Apply(op(0, "put", 2, 3, []int64{2}, 0, false))
	if d.Apply(op(0, "take", 4, 5, nil, 1, true)) {
		t.Error("take returned the head of a two-element deque; spec accepted it")
	}
}

func TestQueueSpecFIFO(t *testing.T) {
	q := NewQueue()
	if !q.Apply(op(0, "enqueue", 0, 1, []int64{1}, 0, false)) {
		t.Fatal("enqueue rejected")
	}
	if !q.Apply(op(0, "enqueue", 2, 3, []int64{2}, 0, false)) {
		t.Fatal("enqueue rejected")
	}
	if q.Apply(op(1, "dequeue", 4, 5, nil, 2, true)) {
		t.Error("LIFO dequeue accepted by FIFO spec")
	}
	if !q.Apply(op(1, "dequeue", 4, 5, nil, 1, true)) {
		t.Error("FIFO dequeue rejected")
	}
	if !q.Apply(op(1, "dequeue", 6, 7, nil, 2, true)) {
		t.Error("second dequeue rejected")
	}
	if !q.Apply(op(1, "dequeue", 8, 9, nil, EmptyVal, true)) {
		t.Error("empty dequeue must return EMPTY")
	}
}

func TestSetSpec(t *testing.T) {
	s := NewSet()
	cases := []struct {
		name string
		v    int64
		ret  int64
		want bool
	}{
		{"contains", 3, 0, true},
		{"add", 3, 1, true},
		{"add", 3, 1, false}, // duplicate add must return 0
		{"add", 3, 0, true},
		{"contains", 3, 1, true},
		{"remove", 3, 1, true},
		{"remove", 3, 1, false},
		{"remove", 3, 0, true},
	}
	for i, c := range cases {
		o := op(0, c.name, 2*i, 2*i+1, []int64{c.v}, c.ret, true)
		if got := s.Apply(o); got != c.want {
			t.Errorf("step %d %s(%d)=%d: Apply = %v, want %v", i, c.name, c.v, c.ret, got, c.want)
		}
	}
}

func TestAllocSpec(t *testing.T) {
	a := NewAlloc()
	if !a.Apply(op(0, "malloc", 0, 1, []int64{8}, 100, true)) {
		t.Fatal("malloc rejected")
	}
	if a.Apply(op(1, "malloc", 2, 3, []int64{8}, 100, true)) {
		t.Error("duplicate allocation accepted")
	}
	if !a.Apply(op(1, "malloc", 2, 3, []int64{8}, 0, true)) {
		t.Error("exhaustion (0) rejected")
	}
	if a.Apply(op(0, "free", 4, 5, []int64{200}, 0, false)) {
		t.Error("free of never-allocated pointer accepted")
	}
	if !a.Apply(op(0, "free", 4, 5, []int64{100}, 0, false)) {
		t.Error("valid free rejected")
	}
	if !a.Apply(op(1, "malloc", 6, 7, []int64{8}, 100, true)) {
		t.Error("re-allocation after free rejected")
	}
}

// --- the paper's Figure 2 histories ---

// Fig. 2a: queue holds one element (put(1) completed); then take()->1 and
// steal()->1 both return the same element. Not SC.
func TestFig2aNotSC(t *testing.T) {
	ops := []Op{
		op(1, "put", 0, 1, []int64{1}, 0, false),
		op(1, "take", 2, 5, nil, 1, true),
		op(2, "steal", 3, 4, nil, 1, true),
	}
	if IsSequentiallyConsistent(ops, NewDeque) {
		t.Error("duplicate extraction judged SC")
	}
	if IsLinearizable(ops, NewDeque) {
		t.Error("duplicate extraction judged linearizable")
	}
}

// Fig. 2b: put(1) completes, concurrent steal returns 0 — a value never
// put (uninitialized read). Not SC.
func TestFig2bNotSC(t *testing.T) {
	ops := []Op{
		op(1, "put", 0, 2, []int64{1}, 0, false),
		op(2, "steal", 1, 3, nil, 0, true),
	}
	if IsSequentiallyConsistent(ops, NewDeque) {
		t.Error("garbage steal judged SC")
	}
	if NoGarbage(ops) {
		t.Error("NoGarbage accepted a stolen value that was never put")
	}
}

// Fig. 2c: put(1) completes strictly before steal() returns EMPTY. SC
// holds (steal may be reordered before put) but linearizability fails
// (real-time order pins put first).
func TestFig2cSCButNotLinearizable(t *testing.T) {
	ops := []Op{
		op(1, "put", 0, 1, []int64{1}, 0, false),
		op(2, "steal", 2, 3, nil, EmptyVal, true),
	}
	if !IsSequentiallyConsistent(ops, NewDeque) {
		t.Error("empty steal after put judged not SC; SC permits commuting them")
	}
	if IsLinearizable(ops, NewDeque) {
		t.Error("empty steal after completed put judged linearizable")
	}
}

// Overlapping version of 2c: if put and steal overlap, EMPTY is fine even
// for linearizability.
func TestOverlappingEmptyStealLinearizable(t *testing.T) {
	ops := []Op{
		op(1, "put", 0, 3, []int64{1}, 0, false),
		op(2, "steal", 1, 2, nil, EmptyVal, true),
	}
	if !IsLinearizable(ops, NewDeque) {
		t.Error("overlapping empty steal judged non-linearizable")
	}
}

func TestSerialHistoryAlwaysValid(t *testing.T) {
	ops := serialOps([]Op{
		{Thread: 0, Name: "put", Args: []int64{1}},
		{Thread: 0, Name: "put", Args: []int64{2}},
		{Thread: 1, Name: "steal", Ret: 1, HasRet: true},
		{Thread: 0, Name: "take", Ret: 2, HasRet: true},
		{Thread: 1, Name: "steal", Ret: EmptyVal, HasRet: true},
	})
	if !IsSequentiallyConsistent(ops, NewDeque) {
		t.Error("valid serial history rejected by SC")
	}
	if !IsLinearizable(ops, NewDeque) {
		t.Error("valid serial history rejected by linearizability")
	}
}

// --- property tests ---

// genSerialDequeHistory produces a random valid serial deque history.
func genSerialDequeHistory(rng *rand.Rand, n int) []Op {
	spec := NewDeque().(*Deque)
	var ops []Op
	next := int64(1)
	for i := 0; i < n; i++ {
		thread := rng.Intn(3)
		var o Op
		switch rng.Intn(3) {
		case 0:
			o = Op{Thread: 0, Name: "put", Args: []int64{next}}
			next++
		case 1:
			ret := int64(EmptyVal)
			if len(spec.items) > 0 {
				ret = spec.items[len(spec.items)-1]
			}
			o = Op{Thread: 0, Name: "take", Ret: ret, HasRet: true}
		default:
			ret := int64(EmptyVal)
			if len(spec.items) > 0 {
				ret = spec.items[0]
			}
			o = Op{Thread: 1 + thread%2, Name: "steal", Ret: ret, HasRet: true}
		}
		o.Inv = 2 * i
		o.Res = 2*i + 1
		if !spec.Apply(o) {
			panic("generator produced illegal op")
		}
		ops = append(ops, o)
	}
	return ops
}

// Property: serial histories generated by executing the spec are both SC
// and linearizable; linearizability implies SC on every history we try.
func TestQuickSerialHistoriesValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ops := genSerialDequeHistory(rng, 2+rng.Intn(10))
		return IsSequentiallyConsistent(ops, NewDeque) && IsLinearizable(ops, NewDeque)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: linearizable implies sequentially consistent (we perturb event
// indices to create overlaps, preserving per-thread order).
func TestQuickLinImpliesSC(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ops := genSerialDequeHistory(rng, 2+rng.Intn(8))
		// Stretch some response times to create overlap (keeps a valid
		// linearization: the original order).
		for i := range ops {
			ops[i].Res += rng.Intn(4)
		}
		if IsLinearizable(ops, NewDeque) && !IsSequentiallyConsistent(ops, NewDeque) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: corrupting a non-EMPTY return value of a serial history makes
// it non-SC (the value 999 is never put).
func TestQuickGarbageValueRejected(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ops := genSerialDequeHistory(rng, 3+rng.Intn(8))
		// find an op with a real return
		cand := -1
		for i, o := range ops {
			if o.HasRet && o.Ret != EmptyVal {
				cand = i
				break
			}
		}
		if cand < 0 {
			return true // nothing to corrupt
		}
		ops[cand].Ret = 999
		return !IsSequentiallyConsistent(ops, NewDeque)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNoGarbage(t *testing.T) {
	good := serialOps([]Op{
		{Thread: 0, Name: "put", Args: []int64{4}},
		{Thread: 1, Name: "steal", Ret: 4, HasRet: true},
		{Thread: 1, Name: "steal", Ret: 4, HasRet: true}, // duplicate ok (idempotent)
		{Thread: 0, Name: "take", Ret: EmptyVal, HasRet: true},
	})
	if !NoGarbage(good) {
		t.Error("idempotent duplicate flagged as garbage")
	}
	bad := serialOps([]Op{
		{Thread: 0, Name: "put", Args: []int64{4}},
		{Thread: 1, Name: "steal", Ret: 5, HasRet: true},
	})
	if NoGarbage(bad) {
		t.Error("garbage value accepted")
	}
}

func TestParseCriterion(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Criterion
		ok   bool
	}{
		{"sc", SeqConsistency, true},
		{"lin", Linearizability, true},
		{"safety", MemorySafety, true},
		{"bogus", MemorySafety, false},
	} {
		got, ok := ParseCriterion(c.in)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("ParseCriterion(%q) = %v,%v", c.in, got, ok)
		}
	}
}

func TestCheckDispatch(t *testing.T) {
	ops := []Op{
		op(1, "put", 0, 1, []int64{1}, 0, false),
		op(2, "steal", 2, 3, nil, EmptyVal, true),
	}
	if !Check(MemorySafety, ops, NewDeque, false) {
		t.Error("MemorySafety must pass on any history")
	}
	if !Check(SeqConsistency, ops, NewDeque, false) {
		t.Error("SC check failed on Fig. 2c history")
	}
	if Check(Linearizability, ops, NewDeque, false) {
		t.Error("linearizability check passed on Fig. 2c history")
	}
	garbage := []Op{op(2, "steal", 0, 1, nil, 9, true)}
	if Check(MemorySafety, garbage, NewDeque, true) {
		t.Error("garbage check not applied")
	}
}

func TestByName(t *testing.T) {
	for _, n := range []string{"deque", "queue", "set", "alloc"} {
		if _, err := ByName(n); err != nil {
			t.Errorf("ByName(%q): %v", n, err)
		}
	}
	if _, err := ByName("stack"); err == nil {
		t.Error("unknown spec accepted")
	}
}

func TestMemoizationHandlesLargerHistories(t *testing.T) {
	// 3 threads x 6 ops each of a valid interleaving: must finish fast.
	var ops []Op
	ev := 0
	spec := NewQueue().(*Queue)
	for i := 0; i < 6; i++ {
		for th := 0; th < 3; th++ {
			var o Op
			if th == 0 {
				o = Op{Thread: th, Name: "enqueue", Args: []int64{int64(i + 1)}}
			} else {
				ret := int64(EmptyVal)
				if len(spec.items) > 0 {
					ret = spec.items[0]
				}
				o = Op{Thread: th, Name: "dequeue", Ret: ret, HasRet: true}
			}
			o.Inv = ev
			o.Res = ev + 1
			ev += 2
			if !spec.Apply(o) {
				t.Fatal("generator bug")
			}
			ops = append(ops, o)
		}
	}
	if !IsSequentiallyConsistent(ops, NewQueue) {
		t.Error("valid queue history rejected")
	}
	if !IsLinearizable(ops, NewQueue) {
		t.Error("valid queue history rejected by lin")
	}
}
