package spec

import (
	"math/rand"
	"reflect"
	"testing"
)

// mutateHistory perturbs a valid serial deque history into histories of
// all kinds — overlapping, garbage-returning, reordered — so the
// differential test below covers accepting and rejecting searches alike.
func mutateHistory(rng *rand.Rand, ops []Op) []Op {
	out := make([]Op, len(ops))
	copy(out, ops)
	switch rng.Intn(4) {
	case 0: // keep serial (accepting path)
	case 1: // stretch responses to create overlap
		for i := range out {
			out[i].Res += rng.Intn(5)
		}
	case 2: // corrupt one return value
		if i := rng.Intn(len(out)); out[i].HasRet {
			out[i].Ret = 999
		}
	case 3: // swap two ops' positions across threads (often non-SC)
		i, j := rng.Intn(len(out)), rng.Intn(len(out))
		out[i].Thread, out[j].Thread = out[j].Thread, out[i].Thread
	}
	return out
}

// TestAutomatonMatchesLegacy differentially pins the compiled-automaton
// search against the string-keyed dfs: one reused Checker per path (so
// the automaton accumulates state across checks, as in the engine) must
// produce identical SC and linearizability verdicts on every history.
func TestAutomatonMatchesLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var auto, legacy Checker
	legacy.DisableAutomaton = true
	for trial := 0; trial < 500; trial++ {
		ops := mutateHistory(rng, genSerialDequeHistory(rng, 2+rng.Intn(9)))
		for _, crit := range []Criterion{SeqConsistency, Linearizability} {
			got := auto.Check(crit, ops, NewDeque, false)
			want := legacy.Check(crit, ops, NewDeque, false)
			if got != want {
				t.Fatalf("trial %d %v: automaton=%v legacy=%v on %v", trial, crit, got, want, ops)
			}
		}
	}
	if len(auto.aut.states) == 0 || len(auto.aut.trans) == 0 {
		t.Fatalf("automaton path never engaged: %d states, %d transitions",
			len(auto.aut.states), len(auto.aut.trans))
	}
}

// TestAutomatonTypeGuard reuses one Checker across different spec types:
// the tables must flush on the type change (canonical keys are only
// unique within a type) and verdicts must stay correct.
func TestAutomatonTypeGuard(t *testing.T) {
	var c Checker
	deqOps := serialOps([]Op{
		{Thread: 0, Name: "put", Args: []int64{1}},
		{Thread: 1, Name: "steal", Ret: 1, HasRet: true},
	})
	if !c.Check(SeqConsistency, deqOps, NewDeque, false) {
		t.Fatal("valid deque history rejected")
	}
	if c.aut.typ != reflect.TypeOf(NewDeque()) {
		t.Fatalf("automaton typed %v, want Deque", c.aut.typ)
	}
	// Queue and Deque share the encodeInts state encoding; without the
	// type guard the interned empty-deque state would be served as an
	// empty-queue state.
	qOps := serialOps([]Op{
		{Thread: 0, Name: "enqueue", Args: []int64{7}},
		{Thread: 1, Name: "dequeue", Ret: 7, HasRet: true},
	})
	if !c.Check(SeqConsistency, qOps, NewQueue, false) {
		t.Fatal("valid queue history rejected after spec-type switch")
	}
	if c.aut.typ != reflect.TypeOf(NewQueue()) {
		t.Fatalf("automaton typed %v after switch, want Queue", c.aut.typ)
	}
	badQ := serialOps([]Op{
		{Thread: 0, Name: "enqueue", Args: []int64{7}},
		{Thread: 1, Name: "dequeue", Ret: 8, HasRet: true},
	})
	if c.Check(SeqConsistency, badQ, NewQueue, false) {
		t.Fatal("invalid queue history accepted after spec-type switch")
	}
}

// TestAutomatonEnsureFlushesOverCap checks the generational flush: once a
// table exceeds its cap, the next ensure discards and retypes the tables.
func TestAutomatonEnsureFlushesOverCap(t *testing.T) {
	var a automaton
	typ := reflect.TypeOf(NewDeque())
	a.ensure(typ)
	for i := 0; i <= maxAutomatonTrans; i++ {
		a.trans[uint64(i)] = 0
	}
	a.ensure(typ)
	if len(a.trans) != 0 {
		t.Fatalf("over-cap transition table not flushed: %d entries", len(a.trans))
	}
}
