package spec

import (
	"fmt"
	"strconv"
	"strings"
)

// IsSequentiallyConsistent reports whether the completed operations admit
// an interleaving that preserves each thread's program order and is
// accepted by the sequential specification (operation-level sequential
// consistency). newSpec constructs a fresh specification state.
//
// The search enumerates sequentializations with memoization on
// (per-thread progress vector, specification state) — the worst case is
// exponential in history length (paper §6.4), which is why clients keep
// executions short.
func IsSequentiallyConsistent(ops []Op, newSpec func() Sequential) bool {
	return check(ops, newSpec, false)
}

// IsLinearizable reports whether the completed operations admit a
// sequentialization that preserves both program order and the real-time
// order between non-overlapping operations (Herlihy & Wing; the Wing–Gong
// style search).
func IsLinearizable(ops []Op, newSpec func() Sequential) bool {
	return check(ops, newSpec, true)
}

func check(ops []Op, newSpec func() Sequential, realTime bool) bool {
	var c Checker
	return c.check(ops, newSpec, realTime)
}

// clone copies state for one DFS branch, reusing a recycled dead state
// when possible: every state in one search is the same concrete type, so
// a copyFrom hit replaces the Clone allocation with an in-place copy.
func (s *Checker) clone(state Sequential) Sequential {
	if n := len(s.free); n > 0 {
		c := s.free[n-1]
		if cf, ok := c.(copierFrom); ok && cf.copyFrom(state) {
			s.free = s.free[:n-1]
			return c
		}
	}
	return state.Clone()
}

// recycle returns a state whose branch failed to the free list. Dead
// states are unreachable from anywhere else (each owns its backing
// storage exclusively), so reuse cannot alias a live state.
func (s *Checker) recycle(state Sequential) {
	if _, ok := state.(copierFrom); ok {
		s.free = append(s.free, state)
	}
}

// dfs explores the next operation choices. memo records failed states.
func (s *Checker) dfs(state Sequential) bool {
	done := true
	for i := range s.queues {
		if s.idx[i] < len(s.queues[i]) {
			done = false
			break
		}
	}
	if done {
		return true
	}
	s.keyBuf = appendStateKey(s.keyBuf[:0], s.idx, state)
	if s.memo[string(s.keyBuf)] {
		return false // known dead end
	}

	for i := range s.queues {
		if s.idx[i] >= len(s.queues[i]) {
			continue
		}
		op := s.queues[i][s.idx[i]]
		if s.realTime && !minimalInRealTime(s.queues, s.idx, i, op) {
			continue
		}
		next := s.clone(state)
		if !next.Apply(op) {
			s.recycle(next)
			continue
		}
		s.idx[i]++
		if s.dfs(next) {
			s.idx[i]--
			return true
		}
		s.idx[i]--
		s.recycle(next)
	}
	// Rebuild the key: recursive calls clobbered the scratch buffer.
	key := string(appendStateKey(s.keyBuf[:0], s.idx, state))
	s.memo[key] = true
	return false
}

// minimalInRealTime reports whether op may be linearized next: no other
// unchosen operation completed before op was invoked. Each thread's
// unchosen operations are in program order, so only each thread's next
// operation can precede op in real time.
func minimalInRealTime(queues [][]Op, idx []int, self int, op Op) bool {
	for j := range queues {
		if j == self || idx[j] >= len(queues[j]) {
			continue
		}
		if queues[j][idx[j]].Res < op.Inv {
			return false
		}
	}
	return true
}

func appendStateKey(dst []byte, idx []int, state Sequential) []byte {
	for _, i := range idx {
		dst = strconv.AppendInt(dst, int64(i), 10)
		dst = append(dst, ':')
	}
	dst = append(dst, '|')
	if ka, ok := state.(keyAppender); ok {
		return ka.appendKey(dst)
	}
	return append(dst, state.Key()...)
}

// RelaxStealAborts rewrites every steal()=EMPTY operation that overlaps
// (in real time) another take or steal into a no-op "aborted steal". The
// published work-stealing algorithms return ABORT from steal when they
// lose a race with a concurrent remover (Chase-Lev's CAS failure, THE's
// handshake): a contended steal that gives up is not claiming the deque
// was empty. A steal()=EMPTY with no overlapping remover really is an
// emptiness claim and stays strict — which is exactly the paper's Fig. 2c
// linearizability violation. Removal-free histories are unaffected.
func RelaxStealAborts(ops []Op) []Op {
	out := make([]Op, len(ops))
	copy(out, ops)
	for i := range out {
		o := &out[i]
		if o.Name != "steal" || !o.HasRet || o.Ret != EmptyVal {
			continue
		}
		// Scan partners in the ORIGINAL ops so that two mutually
		// overlapping empty steals both relax.
		for j := range ops {
			if j == i {
				continue
			}
			p := &ops[j]
			if p.Name != "steal" && p.Name != "take" {
				continue
			}
			// overlap: neither completes before the other starts
			if p.Res > o.Inv && o.Res > p.Inv {
				o.Name = "steal_abort"
				break
			}
		}
	}
	return out
}

// NoGarbage checks the idempotent-WSQ safety property used for the iWSQ
// benchmarks under the Memory Safety column of Table 3: every non-EMPTY
// value returned by take or steal must have been an argument of some put
// in the history ("no garbage tasks returned"). Idempotent semantics allow
// a task to be returned more than once, so no uniqueness is required.
func NoGarbage(ops []Op) bool {
	puts := make(map[int64]bool)
	for _, o := range ops {
		if o.Name == "put" && len(o.Args) == 1 {
			puts[o.Args[0]] = true
		}
	}
	for _, o := range ops {
		if (o.Name == "take" || o.Name == "steal") && o.HasRet && o.Ret != EmptyVal {
			if !puts[o.Ret] {
				return false
			}
		}
	}
	return true
}

// Criterion selects which history check an analysis runs.
type Criterion uint8

const (
	// MemorySafety checks only interpreter-detected violations (plus
	// NoGarbage for the idempotent WSQs); histories are not sequentialized.
	MemorySafety Criterion = iota
	// SeqConsistency is operation-level sequential consistency.
	SeqConsistency
	// Linearizability is Herlihy/Wing linearizability.
	Linearizability
)

func (c Criterion) String() string {
	switch c {
	case MemorySafety:
		return "memory-safety"
	case SeqConsistency:
		return "sequential-consistency"
	case Linearizability:
		return "linearizability"
	}
	return "criterion(?)"
}

// ParseCriterion converts a name ("safety", "sc", "lin") to a Criterion.
func ParseCriterion(s string) (Criterion, bool) {
	switch strings.ToLower(s) {
	case "safety", "memsafety", "memory-safety":
		return MemorySafety, true
	case "sc", "sequential-consistency":
		return SeqConsistency, true
	case "lin", "linearizability":
		return Linearizability, true
	}
	return MemorySafety, false
}

// DescribeFailure explains in prose why a history fails the criterion —
// the "failed specification check" section of a violation-witness
// report. It re-runs the relevant checks; calling it on a passing
// history returns "". The description names the first garbage return
// (when NoGarbage is what failed) or states that no legal
// sequentialization of the per-thread operation sequences exists,
// listing those sequences.
func DescribeFailure(c Criterion, ops []Op, newSpec func() Sequential, checkGarbage bool) string {
	if checkGarbage {
		if op, bad := firstGarbage(ops); bad {
			return fmt.Sprintf("no-garbage check failed: t%d's %v returned a value never passed to put", op.Thread, op)
		}
	}
	var what string
	switch c {
	case SeqConsistency:
		if newSpec == nil || IsSequentiallyConsistent(ops, newSpec) {
			return ""
		}
		what = "sequentially-consistent ordering"
	case Linearizability:
		if newSpec == nil || IsLinearizable(ops, newSpec) {
			return ""
		}
		what = "linearization"
	default:
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s check failed: no %s of the completed operations is accepted by the sequential specification\n", c, what)
	byThread := map[int][]Op{}
	var tids []int
	for _, o := range ops {
		if _, seen := byThread[o.Thread]; !seen {
			tids = append(tids, o.Thread)
		}
		byThread[o.Thread] = append(byThread[o.Thread], o)
	}
	for i := 0; i < len(tids); i++ { // tids arrive in first-invocation order; sort by id
		for j := i + 1; j < len(tids); j++ {
			if tids[j] < tids[i] {
				tids[i], tids[j] = tids[j], tids[i]
			}
		}
	}
	for _, tid := range tids {
		parts := make([]string, len(byThread[tid]))
		for i, o := range byThread[tid] {
			parts[i] = o.String()
		}
		fmt.Fprintf(&b, "  t%d: %s\n", tid, strings.Join(parts, "; "))
	}
	return strings.TrimRight(b.String(), "\n")
}

// firstGarbage returns the first take/steal whose non-EMPTY return value
// no put supplied.
func firstGarbage(ops []Op) (Op, bool) {
	puts := make(map[int64]bool)
	for _, o := range ops {
		if o.Name == "put" && len(o.Args) == 1 {
			puts[o.Args[0]] = true
		}
	}
	for _, o := range ops {
		if (o.Name == "take" || o.Name == "steal") && o.HasRet && o.Ret != EmptyVal {
			if !puts[o.Ret] {
				return o, true
			}
		}
	}
	return Op{}, false
}

// Check applies the criterion to a history: MemorySafety always passes
// here (interpreter faults are judged separately); SC and linearizability
// run the sequentialization search. checkGarbage additionally applies
// NoGarbage (used for idempotent WSQs).
func Check(c Criterion, ops []Op, newSpec func() Sequential, checkGarbage bool) bool {
	if checkGarbage && !NoGarbage(ops) {
		return false
	}
	switch c {
	case MemorySafety:
		return true
	case SeqConsistency:
		return IsSequentiallyConsistent(ops, newSpec)
	case Linearizability:
		return IsLinearizable(ops, newSpec)
	}
	return true
}
