// The paper's running example in full (§2, Fig. 1–2): the Chase-Lev
// work-stealing deque needs different fences for different memory models
// and correctness criteria. This program walks the whole story:
//
//  1. the fence-free deque is correct on an SC machine,
//
//  2. TSO breaks operation-level sequential consistency (Fig. 2a) and F1
//     repairs it,
//
//  3. PSO additionally breaks it via store-store reordering (Fig. 2b) and
//     F2 repairs that,
//
//  4. linearizability on PSO needs a third fence F3 at the end of put
//     (Fig. 2c).
//
//     go run ./examples/chaselev
package main

import (
	"fmt"
	"log"

	"dfence/internal/core"
	"dfence/internal/eval"
	"dfence/internal/memmodel"
	"dfence/internal/progs"
	"dfence/internal/spec"
)

func main() {
	b, err := progs.ByName("chase-lev")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Step 1: the fence-free Chase-Lev deque, checked on each model")
	for _, m := range []memmodel.Model{memmodel.SC, memmodel.TSO, memmodel.PSO} {
		for _, crit := range []spec.Criterion{spec.SeqConsistency, spec.Linearizability} {
			cfg := core.Config{
				Model: m, Criterion: crit,
				NewSpec:          b.NewSpec(),
				RelaxStealAborts: true,
				Seed:             1,
			}
			v := core.CheckOnly(b.Program(), cfg, 500)
			fmt.Printf("  %-3v / %-22v : %3d/500 violations\n", m, crit, v)
		}
	}

	fmt.Println("\nStep 2: synthesize fences per (model, criterion)")
	for _, c := range []struct {
		model memmodel.Model
		crit  spec.Criterion
		fig   string
	}{
		{memmodel.TSO, spec.SeqConsistency, "expect F1 (Fig. 2a repair)"},
		{memmodel.PSO, spec.SeqConsistency, "expect F1+F2 (Fig. 2b repair)"},
		{memmodel.PSO, spec.Linearizability, "expect F1+F2+F3 (Fig. 2c repair)"},
	} {
		res, err := core.Synthesize(b.Program(), core.Config{
			Model: c.model, Criterion: c.crit,
			NewSpec:          b.NewSpec(),
			RelaxStealAborts: true,
			ExecsPerRound:    1000,
			Seed:             1,
			ValidateFences:   true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %v / %v — %s\n", c.model, c.crit, c.fig)
		for _, f := range res.Fences {
			fmt.Printf("    %v %s\n", f.Kind, eval.DescribeFence(res.Program, f))
		}
		if len(res.Fences) == 0 {
			fmt.Println("    (none)")
		}
	}

	fmt.Println("\nStep 3: the paper's Fig. 2c history, checked directly")
	// put(1) completes strictly before a steal that returns EMPTY: SC
	// accepts it (the operations may be commuted), linearizability rejects
	// it (real-time order pins put first).
	ops := []spec.Op{
		{Thread: 1, Name: "put", Args: []int64{1}, Inv: 0, Res: 1},
		{Thread: 2, Name: "steal", Ret: spec.EmptyVal, HasRet: true, Inv: 2, Res: 3},
	}
	fmt.Printf("  history: %v then %v\n", ops[0], ops[1])
	fmt.Printf("  sequentially consistent: %v\n", spec.IsSequentiallyConsistent(ops, spec.NewDeque))
	fmt.Printf("  linearizable:            %v\n", spec.IsLinearizable(ops, spec.NewDeque))
}
