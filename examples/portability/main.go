// Porting study: the paper's motivation — "the process of placing fences
// is repeated whenever the implementation is ported to a different
// architecture" (§1). This example ports the FIFO work-stealing queue
// across SC → TSO → PSO and lets DFENCE compute the fence delta each time:
// none on SC, still none on TSO (the §6.6 observation that FIFO WSQ is
// fence-free under operation-level SC on TSO), and two fences on PSO. It
// then shows the same port under the stricter linearizability criterion,
// where TSO already needs a fence.
//
//	go run ./examples/portability
package main

import (
	"fmt"
	"log"

	"dfence/internal/core"
	"dfence/internal/eval"
	"dfence/internal/memmodel"
	"dfence/internal/progs"
	"dfence/internal/spec"
)

func main() {
	b, err := progs.ByName("fifo-wsq")
	if err != nil {
		log.Fatal(err)
	}

	port := func(crit spec.Criterion) {
		fmt.Printf("porting fifo-wsq under %v:\n", crit)
		for _, m := range []memmodel.Model{memmodel.SC, memmodel.TSO, memmodel.PSO} {
			res, err := core.Synthesize(b.Program(), core.Config{
				Model:            m,
				Criterion:        crit,
				NewSpec:          b.NewSpec(),
				RelaxStealAborts: true,
				ExecsPerRound:    1000,
				Seed:             1,
				ValidateFences:   true,
			})
			if err != nil {
				log.Fatal(err)
			}
			status := "ok"
			if res.Unfixable {
				status = "cannot satisfy"
			} else if !res.Converged {
				status = "did not converge"
			}
			fmt.Printf("  %-3v: %d fence(s) [%s]\n", m, len(res.Fences), status)
			for _, f := range res.Fences {
				fmt.Printf("        %v %s\n", f.Kind, eval.DescribeFence(res.Program, f))
			}
		}
		fmt.Println()
	}

	port(spec.SeqConsistency)
	port(spec.Linearizability)

	fmt.Println("Takeaway: weakening the criterion from linearizability to")
	fmt.Println("operation-level SC yields a FIFO WSQ with no fences at all on")
	fmt.Println("TSO (§6.6) — the tool quantifies the synchronization cost of")
	fmt.Println("each (criterion, architecture) pair during a port.")
}
