// The §6.7 study: Michael's lock-free memory allocator. Memory-safety
// checking is effective here (unlike for the WSQs, §6.6) because the code
// is full of pointer dereferences: a buffered descriptor field committed
// late becomes a null dereference in another thread. Strengthening the
// criterion to sequential consistency / linearizability surfaces an
// additional fence in free.
//
//	go run ./examples/allocator
package main

import (
	"fmt"
	"log"

	"dfence/internal/core"
	"dfence/internal/eval"
	"dfence/internal/memmodel"
	"dfence/internal/progs"
	"dfence/internal/spec"
)

func main() {
	b, err := progs.ByName("michael-alloc")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("client: thread1 = m m m f f f, thread2 = m f m f (§6.7)")

	fmt.Println("\nviolations of the fence-free allocator (500 runs each):")
	for _, m := range []memmodel.Model{memmodel.SC, memmodel.TSO, memmodel.PSO} {
		for _, crit := range []spec.Criterion{spec.MemorySafety, spec.SeqConsistency} {
			cfg := core.Config{
				Model: m, Criterion: crit,
				NewSpec: b.NewSpec(),
				Seed:    1,
			}
			v := core.CheckOnly(b.Program(), cfg, 500)
			fmt.Printf("  %-3v / %-22v : %3d/500\n", m, crit, v)
		}
	}

	fmt.Println("\nsynthesis on PSO, per criterion:")
	for _, crit := range []spec.Criterion{spec.MemorySafety, spec.SeqConsistency, spec.Linearizability} {
		res, err := core.Synthesize(b.Program(), core.Config{
			Model:          memmodel.PSO,
			Criterion:      crit,
			NewSpec:        b.NewSpec(),
			ExecsPerRound:  1000,
			Seed:           1,
			ValidateFences: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %v: %d fence(s) after %d executions (converged=%v)\n",
			crit, len(res.Fences), res.TotalExecutions, res.Converged)
		for _, f := range res.Fences {
			fmt.Printf("    %v %s\n", f.Kind, eval.DescribeFence(res.Program, f))
		}
	}
}
