// Quickstart: compile a 30-line concurrent mini-C program, watch it break
// under PSO, and let DFENCE synthesize the missing fence.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dfence/internal/core"
	"dfence/internal/eval"
	"dfence/internal/lang"
	"dfence/internal/memmodel"
	"dfence/internal/spec"
)

// A single-producer mailbox: the producer publishes a value and raises a
// flag; the consumer spins on the flag and asserts it sees the value.
// Under PSO the two stores may commit in either order, so the consumer can
// observe flag=1 with data still 0 — the assertion fires. One store-store
// fence repairs it.
const src = `
int data = 0;
int flag = 0;

void producer() {
  data = 42;
  flag = 1;
}

void consumer() {
  while (!flag) { }
  assert(data == 42);
}

int main() {
  int t1 = fork producer();
  int t2 = fork consumer();
  join t1;
  join t2;
  return 0;
}
`

func main() {
	prog, err := lang.Compile(src)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Show the bug exists under PSO but not under SC or TSO.
	for _, m := range []memmodel.Model{memmodel.SC, memmodel.TSO, memmodel.PSO} {
		cfg := core.Config{Model: m, Criterion: spec.MemorySafety, Seed: 1}
		v := core.CheckOnly(prog, cfg, 500)
		fmt.Printf("%-3v: %3d/500 executions fail the assertion\n", m, v)
	}

	// 2. Synthesize the repair for PSO.
	res, err := core.Synthesize(prog, core.Config{
		Model:          memmodel.PSO,
		Criterion:      spec.MemorySafety,
		ExecsPerRound:  500,
		Seed:           1,
		ValidateFences: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsynthesis: %d round(s), %d executions, converged=%v\n",
		len(res.Rounds), res.TotalExecutions, res.Converged)
	for _, f := range res.Fences {
		fmt.Printf("inferred: %v %s\n", f.Kind, eval.DescribeFence(res.Program, f))
	}

	// 3. Confirm the repaired program is clean.
	cfg := core.Config{Model: memmodel.PSO, Criterion: spec.MemorySafety, Seed: 99}
	v := core.CheckOnly(res.Program, cfg, 500)
	fmt.Printf("\nrepaired program: %d/500 executions fail\n", v)
}
