// Witness study: DFENCE captures the first violating execution as a
// complete schedule (a sched.Trace). This example synthesizes fences for
// the MSN queue on PSO, replays the recorded counterexample against the
// original program (reproducing the violation deterministically), and then
// replays the same schedule against the repaired program to show the
// violation is gone.
//
//	go run ./examples/witness
package main

import (
	"fmt"
	"log"

	"dfence/internal/core"
	"dfence/internal/eval"
	"dfence/internal/memmodel"
	"dfence/internal/progs"
	"dfence/internal/sched"
	"dfence/internal/spec"
)

func main() {
	b, err := progs.ByName("msn-queue")
	if err != nil {
		log.Fatal(err)
	}
	original := b.Program()

	res, err := core.Synthesize(original, core.Config{
		Model:          memmodel.PSO,
		Criterion:      spec.SeqConsistency,
		NewSpec:        b.NewSpec(),
		ExecsPerRound:  1000,
		Seed:           1,
		ValidateFences: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthesis converged=%v with %d fence(s):\n", res.Converged, len(res.Fences))
	for _, f := range res.Fences {
		fmt.Printf("  %v %s\n", f.Kind, eval.DescribeFence(res.Program, f))
	}
	if res.Witness == nil {
		log.Fatal("no witness captured")
	}
	fmt.Printf("\nwitness: %d scheduling decisions\n", res.Witness.Len())
	fmt.Printf("violated: %s\n", res.WitnessViolation)

	// 1. Replay against the original program: the violation reproduces.
	rep, ok := sched.Replay(original, nil, res.Witness)
	if !ok {
		log.Fatal("replay diverged on the original program")
	}
	ops := spec.CompleteOps(rep.History)
	badThen := rep.Violation != nil || !spec.IsSequentiallyConsistent(ops, b.NewSpec())
	fmt.Printf("\nreplay on ORIGINAL program: violation reproduced = %v\n", badThen)
	fmt.Println("  history:")
	for _, o := range ops {
		fmt.Printf("    %v\n", o)
	}

	// 2. Replay the same schedule against the repaired program.
	rep2, _ := sched.Replay(res.Program, nil, res.Witness)
	ops2 := spec.CompleteOps(rep2.History)
	badNow := rep2.Violation != nil || !spec.IsSequentiallyConsistent(ops2, b.NewSpec())
	fmt.Printf("\nreplay on REPAIRED program: violation reproduced = %v\n", badNow)
	if badThen && !badNow {
		fmt.Println("\nThe inferred fence kills exactly the recorded counterexample.")
	}
}
