module dfence

go 1.22
