// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON document on stdout, so benchmark runs can be
// committed and diffed without external tooling (`make bench-json`
// produces BENCH_pr4.json this way; `make bench-compare` uses benchstat
// when it happens to be installed).
//
//	go test -run '^$' -bench . -benchmem . | benchjson > bench.json
//
// Every metric the testing package prints is preserved under its unit
// name: ns/op, B/op, allocs/op, and the harness's custom metrics
// (execs/s, fences/op, ...).
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type document struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []benchmark `json:"benchmarks"`
}

func main() {
	var doc document
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			doc.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBench(line); ok {
				doc.Benchmarks = append(doc.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseBench parses one result line: a name, an iteration count, then
// alternating value/unit pairs.
func parseBench(line string) (benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return benchmark{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return benchmark{}, false
	}
	b := benchmark{Name: f[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return benchmark{}, false
		}
		b.Metrics[f[i+1]] = v
	}
	return b, true
}
