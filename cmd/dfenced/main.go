// dfenced is the long-running synthesis service: a durable job queue in
// front of the DFENCE engine.
//
// Serve mode (the default):
//
//	dfenced -spool /var/lib/dfenced -listen :8753
//
// All state lives in the spool directory. Jobs survive restarts: a job
// that was running when the process died is requeued on the next start
// and resumed from its journal's last checkpoint, so a crash (or kill -9)
// costs at most one round of executions. SIGINT/SIGTERM drains: running
// jobs stop at the next round boundary with a checkpoint on disk, then
// the process exits. A second signal force-exits.
//
// Client subcommands (plain HTTP, so scripts don't need curl):
//
//	dfenced submit [flags] [file.mc]   submit a job, print its id
//	dfenced status <job-id>            print the job record
//	dfenced wait <job-id>              poll until the job is terminal
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dfence/internal/serve"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "submit":
			os.Exit(runSubmit(os.Args[2:]))
		case "status":
			os.Exit(runStatus(os.Args[2:]))
		case "wait":
			os.Exit(runWait(os.Args[2:]))
		}
	}
	os.Exit(runServe(os.Args[1:]))
}

func runServe(argv []string) int {
	fs := flag.NewFlagSet("dfenced", flag.ExitOnError)
	var (
		spoolDir    = fs.String("spool", "dfenced-spool", "spool directory (durable state: jobs, journals, memo)")
		listen      = fs.String("listen", "127.0.0.1:8753", "HTTP listen address")
		jobs        = fs.Int("jobs", 2, "concurrent synthesis jobs")
		maxAttempts = fs.Int("max-attempts", 3, "attempts before a job is quarantined")
		queueLimit  = fs.Int("queue-limit", 64, "pending jobs before submissions are shed with 429")
	)
	fs.IntVar(jobs, "j", *jobs, "shorthand for -jobs")
	fs.Parse(argv)

	srv, err := serve.New(serve.Options{
		Dir:         *spoolDir,
		Jobs:        *jobs,
		MaxAttempts: *maxAttempts,
		QueueLimit:  *queueLimit,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dfenced: %v\n", err)
		return 1
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dfenced: %v\n", err)
		return 1
	}
	hs := &http.Server{Handler: srv.Handler()}

	srv.Start()
	fmt.Fprintf(os.Stderr, "dfenced: serving on http://%s (spool %s, %d workers)\n",
		ln.Addr(), *spoolDir, *jobs)

	httpDone := make(chan error, 1)
	go func() { httpDone <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "dfenced: %v — draining (checkpointing running jobs; signal again to force exit)\n", got)
		go func() {
			<-sig
			fmt.Fprintln(os.Stderr, "dfenced: forced exit")
			os.Exit(130)
		}()
	case err := <-httpDone:
		fmt.Fprintf(os.Stderr, "dfenced: http server: %v\n", err)
		return 1
	}

	// Drain the queue first so /readyz flips and running jobs checkpoint,
	// then stop accepting HTTP. Jobs stop at round boundaries, so the
	// ceiling here only guards against a wedged worker.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "dfenced: drain: %v\n", err)
	}
	_ = hs.Shutdown(ctx)
	fmt.Fprintln(os.Stderr, "dfenced: drained; queued and running jobs resume on next start")
	return 0
}

// client plumbing ------------------------------------------------------------

func apiGet(base, path string, out any) error {
	resp, err := http.Get(base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s: %s", path, resp.Status, strings.TrimSpace(string(body)))
	}
	return json.Unmarshal(body, out)
}

func normalizeAddr(addr string) string {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return strings.TrimSuffix(addr, "/")
}

func runSubmit(argv []string) int {
	fs := flag.NewFlagSet("dfenced submit", flag.ExitOnError)
	var (
		addr      = fs.String("addr", "127.0.0.1:8753", "dfenced address")
		builtin   = fs.String("builtin", "", "built-in benchmark name instead of a source file")
		model     = fs.String("model", "", "memory model (tso, pso)")
		criterion = fs.String("criterion", "", "robustness criterion (safety, seq)")
		seqSpec   = fs.String("seq-spec", "", "sequential spec for -criterion seq")
		seed      = fs.Int64("seed", 0, "base random seed")
		execs     = fs.Int("execs", 0, "executions per round")
		rounds    = fs.Int("rounds", 0, "max synthesis rounds")
		wait      = fs.Bool("wait", false, "block until the job is terminal")
	)
	fs.Parse(argv)

	spec := serve.JobSpec{
		Builtin: *builtin, Model: *model, Criterion: *criterion,
		SeqSpec: *seqSpec, Seed: *seed, Execs: *execs, Rounds: *rounds,
	}
	if fs.NArg() > 0 {
		src, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "dfenced submit: %v\n", err)
			return 1
		}
		spec.Source = string(src)
	}

	body, err := json.Marshal(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dfenced submit: %v\n", err)
		return 1
	}
	base := normalizeAddr(*addr)
	resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		fmt.Fprintf(os.Stderr, "dfenced submit: %v\n", err)
		return 1
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		fmt.Fprintf(os.Stderr, "dfenced submit: %s: %s\n", resp.Status, strings.TrimSpace(string(raw)))
		return 1
	}
	var sr struct {
		ID       string `json:"id"`
		State    string `json:"state"`
		FromMemo bool   `json:"from_memo"`
	}
	if err := json.Unmarshal(raw, &sr); err != nil {
		fmt.Fprintf(os.Stderr, "dfenced submit: bad response: %v\n", err)
		return 1
	}
	fmt.Printf("%s\t%s", sr.ID, sr.State)
	if sr.FromMemo {
		fmt.Printf("\tfrom_memo")
	}
	fmt.Println()
	if *wait {
		return waitFor(base, sr.ID)
	}
	return 0
}

func runStatus(argv []string) int {
	fs := flag.NewFlagSet("dfenced status", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8753", "dfenced address")
	fs.Parse(argv)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dfenced status [-addr host:port] <job-id>")
		return 2
	}
	var job json.RawMessage
	if err := apiGet(normalizeAddr(*addr), "/jobs/"+fs.Arg(0), &job); err != nil {
		fmt.Fprintf(os.Stderr, "dfenced status: %v\n", err)
		return 1
	}
	os.Stdout.Write(append(job, '\n'))
	return 0
}

func runWait(argv []string) int {
	fs := flag.NewFlagSet("dfenced wait", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8753", "dfenced address")
	fs.Parse(argv)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dfenced wait [-addr host:port] <job-id>")
		return 2
	}
	return waitFor(normalizeAddr(*addr), fs.Arg(0))
}

// waitFor polls the job until it reaches a terminal state, then prints the
// full record. Exit code 0 only for done.
func waitFor(base, id string) int {
	for {
		var job struct {
			State  string          `json:"state"`
			Error  string          `json:"error"`
			Result json.RawMessage `json:"result"`
		}
		if err := apiGet(base, "/jobs/"+id, &job); err != nil {
			fmt.Fprintf(os.Stderr, "dfenced wait: %v\n", err)
			return 1
		}
		switch job.State {
		case "done":
			os.Stdout.Write(append(job.Result, '\n'))
			return 0
		case "failed", "quarantined":
			fmt.Fprintf(os.Stderr, "dfenced wait: job %s %s: %s\n", id, job.State, job.Error)
			return 1
		}
		time.Sleep(200 * time.Millisecond)
	}
}
