// Command experiments regenerates the paper's evaluation artifacts:
//
//	experiments -table2            benchmark inventory (Table 2)
//	experiments -table3            fence-inference matrix (Table 3)
//	experiments -table3 -bench X   one Table 3 row
//	experiments -fig4              fences vs executions-per-round (Figure 4)
//	experiments -fig5              fences vs flush probability (Figure 5)
//	experiments -sweep             violation exposure vs flush probability (§6.5)
//	experiments -all               everything
//
// All runs are deterministic for a given -seed.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"dfence/internal/eval"
	"dfence/internal/memmodel"
	"dfence/internal/profiling"
	"dfence/internal/progs"
	"dfence/internal/spec"
	"dfence/internal/telemetry"
	"dfence/internal/trace"
)

func main() {
	var (
		table2 = flag.Bool("table2", false, "print the benchmark inventory (Table 2)")
		table3 = flag.Bool("table3", false, "run the fence-inference matrix (Table 3)")
		fig4   = flag.Bool("fig4", false, "run the executions-per-round sweep (Figure 4)")
		fig5   = flag.Bool("fig5", false, "run the flush-probability sweep (Figure 5)")
		sweep  = flag.Bool("sweep", false, "violation exposure vs flush probability (§6.5)")
		all    = flag.Bool("all", false, "run everything")
		bench  = flag.String("bench", "", "restrict -table3 to one benchmark")
		execs  = flag.Int("execs", 1000, "executions per round (K)")
		seed   = flag.Int64("seed", 1, "base random seed")
		jobs   = flag.Int("j", 0, "parallel workers for the execution engine (0 = NumCPU); artifacts are identical for any value")
		jdir   = flag.String("journal-dir", "", "write one JSONL run journal per Table 3 cell into this directory")
		listen = flag.String("listen", "", "serve /metrics, /runz, /tracez, and /debug/pprof on this address (e.g. :6060)")
		traceF = flag.String("trace", "", "write the run's span trace (Perfetto-loadable JSON) to this file at exit")
		cpuP   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memP   = flag.String("memprofile", "", "write a heap (allocs) profile to this file on exit")
	)
	flag.Parse()
	if !*table2 && !*table3 && !*fig4 && !*fig5 && !*sweep && !*all {
		flag.Usage()
		os.Exit(2)
	}
	stopProf, err := profiling.Start(*cpuP, *memP)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stopProf()
	// os.Exit skips deferred calls; error paths below flush profiles first.
	exit := func(code int) {
		stopProf()
		os.Exit(code)
	}
	opts := eval.Options{ExecsPerRound: *execs, Seed: *seed, Validate: true, Workers: *jobs}
	var tracer *trace.Tracer
	if *traceF != "" {
		workers := *jobs
		if workers <= 0 {
			workers = runtime.NumCPU()
		}
		tracer = trace.New(trace.Options{Lanes: workers})
		opts.Tracer = tracer
	}
	if *jdir != "" {
		if err := os.MkdirAll(*jdir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(1)
		}
		opts.JournalDir = *jdir
	}
	if *listen != "" {
		workers := *jobs
		if workers <= 0 {
			workers = runtime.NumCPU()
		}
		reg := telemetry.NewRegistry(workers)
		opts.Metrics = telemetry.NewMetrics(reg)
		status := &telemetry.Status{}
		opts.Sink = status
		srv := &telemetry.Server{Registry: reg, Status: status}
		if tracer != nil {
			srv.Tracez = tracer.Summary
		}
		bound, shutdown, err := srv.Start(*listen)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(1)
		}
		defer shutdown()
		fmt.Fprintf(os.Stderr, "introspection server on http://%s\n", bound)
	}

	if *table2 || *all {
		fmt.Println("== Table 2: benchmarks ==")
		fmt.Println(eval.Table2(progs.All()))
	}
	if *table3 || *all {
		benches := progs.All()
		if *bench != "" {
			b, err := progs.ByName(*bench)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				exit(1)
			}
			benches = []*progs.Benchmark{b}
		}
		fmt.Println("== Table 3: inferred fences ==")
		start := time.Now()
		rows, err := eval.Table3(benches, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(1)
		}
		fmt.Print(eval.FormatTable3(rows))
		fmt.Printf("(%d rows in %.1fs)\n\n", len(rows), time.Since(start).Seconds())
	}
	if *fig4 || *all {
		fmt.Println("== Figure 4 ==")
		pts, err := eval.Fig4([]int{50, 100, 200, 500, 1000, 2000}, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(1)
		}
		fmt.Print(eval.FormatFig4(pts))
		fmt.Println()
	}
	if *fig5 || *all {
		fmt.Println("== Figure 5 ==")
		probs := []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.98}
		pts, err := eval.Fig5(probs, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(1)
		}
		fmt.Print(eval.FormatFig5(pts))
		fmt.Println()
		// The redundancy effect is most visible on Chase-Lev under
		// linearizability; print it as a second series.
		pts2, err := eval.Fig5For("chase-lev", spec.Linearizability, probs, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(1)
		}
		fmt.Print(eval.FormatFig5Titled("Chase-Lev, linearizability, PSO", pts2))
		fmt.Println()
	}
	if *sweep || *all {
		fmt.Println("== Scheduler sweep (§6.5): chase-lev SC violations per 1000 runs ==")
		probs := []float64{0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9}
		for _, m := range []memmodel.Model{memmodel.TSO, memmodel.PSO} {
			res, err := eval.SchedulerSweep("chase-lev", m, spec.SeqConsistency, probs, 1000, *seed)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				exit(1)
			}
			fmt.Printf("%s: ", m)
			for _, p := range probs {
				fmt.Printf("p=%.2f:%d  ", p, res[p])
			}
			fmt.Println()
		}
	}
	if tracer != nil {
		if err := tracer.WriteJSONFile(*traceF); err != nil {
			fmt.Fprintln(os.Stderr, "experiments: trace:", err)
		}
	}
}
