// Command litmus runs the memory-model conformance suite, printing the
// outcome histogram of every test under every model and flagging any
// forbidden outcome or missing distinguishing outcome.
//
//	litmus [-runs N] [-seed S] [-test NAME]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"dfence/internal/litmus"
	"dfence/internal/memmodel"
)

func main() {
	var (
		runs = flag.Int("runs", 1000, "executions per (test, model)")
		seed = flag.Int64("seed", 42, "base seed")
		name = flag.String("test", "", "run a single test")
	)
	flag.Parse()

	tests := litmus.All()
	if *name != "" {
		t, err := litmus.ByName(*name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		tests = []*litmus.Test{t}
	}

	failed := 0
	for _, t := range tests {
		fmt.Printf("== %s — %s\n", t.Name, t.Descr)
		for _, m := range []memmodel.Model{memmodel.SC, memmodel.TSO, memmodel.PSO} {
			fp := 0.4
			if m == memmodel.TSO {
				fp = 0.15
			}
			got, err := t.Check(m, *runs, fp, *seed)
			status := "ok"
			if err != nil {
				status = "FAIL: " + err.Error()
				failed++
			}
			var keys []string
			for o := range got {
				keys = append(keys, string(o))
			}
			sort.Strings(keys)
			fmt.Printf("  %-3v [%s]:", m, status)
			for _, k := range keys {
				fmt.Printf(" %s×%d", k, got[litmus.Outcome(k)])
			}
			fmt.Println()
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d conformance failures\n", failed)
		os.Exit(1)
	}
}
