// Command dfence synthesizes memory fences for a concurrent mini-C
// program, the way the paper's DFENCE tool consumed a C algorithm plus a
// client:
//
//	dfence -model pso -spec sc -seq deque program.mc
//
// The program must contain a main function acting as the client (forking
// worker threads that call the algorithm's operations, which are declared
// with the `operation` keyword). The tool repeatedly executes the program
// under the flush-delaying demonic scheduler, repairs the violating
// executions it finds, and prints the inferred fence placements.
//
// Flags:
//
//	-model   memory model: sc, tso, pso (default pso)
//	-spec    criterion: safety, sc, lin (default sc)
//	-seq     sequential spec for sc/lin: deque, wsq-lifo, wsq-fifo, queue, set, alloc
//	-execs   executions per round, K (default 1000)
//	-rounds  maximum repair rounds (default 10)
//	-flush   flush probability (0 = 0.1 tso / 0.5 pso, negative = never flush early)
//	-seed    random seed (default 1)
//	-j       parallel workers for the execution engine (default NumCPU)
//	-validate  prune redundant fences after convergence (default true)
//	-disasm  print the compiled IR and exit
//	-builtin use a built-in benchmark instead of a file (e.g. chase-lev)
//	-static  consult the static delay-set analysis: converge with zero
//	         executions when the delay set is empty, and prune proposed
//	         predicates to the static critical cycles
//	-resume  continue an interrupted run from its journal; the program and
//	         all determinism-relevant configuration are taken from the
//	         journal's RunStart record, only -j may differ
//
// SIGINT stops the run gracefully at the next round boundary: the journal
// (if any) ends in a checkpoint covering every completed round, and the
// command prints the `dfence -resume run.jsonl` invocation that continues
// it with zero re-executed work. A second SIGINT aborts immediately.
//
// Telemetry flags (see DESIGN.md, Telemetry):
//
//	-journal      write a JSONL run journal (RunStart, RoundStart,
//	              Violation, SolverResult, FenceChange, RoundEnd,
//	              Converged) that fully reconstructs the run
//	-listen       serve /metrics (OpenMetrics), /runz (JSON run status),
//	              /tracez (live trace summary), and /debug/pprof on this
//	              address (e.g. :6060)
//	-metrics-out  write an OpenMetrics snapshot to this file at exit
//	-trace        write the run's span trace (Chrome trace-event JSON,
//	              viewable in Perfetto) to this file at exit
//	-explain      render the violation witness as a human-readable
//	              interleaving report (also shown automatically when the
//	              program is unfixable)
//
// The `trace` subcommand summarizes a recorded trace file in the
// terminal — per-phase and per-round wall breakdown, worker utilization,
// and portfolio-phase attribution (including deferral-loop spin counts):
//
//	dfence trace run.trace.json
//
// The `analyze` subcommand runs only the static passes — the IR verifier
// and the delay-set analysis — and prints candidate pairs, delay pairs,
// and one witness critical cycle per delay, without executing anything:
//
//	dfence analyze -model pso program.mc
//	dfence analyze -model tso -builtin chase-lev
//
// Verifier findings print to stderr and exit with status 2.
//
// The `explain` subcommand re-renders the violation witnesses of a
// recorded journal — no re-execution, no access to the original source
// file (the journal embeds it):
//
//	dfence explain run.jsonl
//
// The `fuzz` subcommand runs a differential fuzzing campaign: a seeded
// corpus of litmus templates (one per static critical-cycle shape) and
// random mini-C programs is cross-checked between exhaustive
// interleaving+flush enumeration (ground truth), the static delay-set
// analysis, and dynamic synthesis; divergences are shrunk and written as
// reproduction files, and the exit status is nonzero if any occurred:
//
//	dfence fuzz -seed 1 -n 200 -models tso,pso,rmo -out fuzzout
//
// Resilience flags (see DESIGN.md, Resilience):
//
//	-exec-timeout    wall-clock budget per execution (0 = none); runs that
//	                 exceed it count as inconclusive
//	-deadline        wall-clock budget for the whole synthesis (0 = none);
//	                 on expiry the partial rounds are reported as aborted
//	-min-conclusive  floor on the conclusive fraction of a violation-free
//	                 round for it to count as convergence
//	                 (0 = default 0.5, negative = disabled)
//	-max-models      cap on minimal-model enumeration per round
//	                 (0 = default 4096, negative = unlimited)
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"sync"

	"dfence/internal/core"
	"dfence/internal/ir"
	"dfence/internal/lang"
	"dfence/internal/memmodel"
	"dfence/internal/profiling"
	"dfence/internal/progs"
	"dfence/internal/spec"
	"dfence/internal/staticanalysis"
	"dfence/internal/synth"
	"dfence/internal/telemetry"
	"dfence/internal/trace"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "analyze":
			runAnalyze(os.Args[2:])
			return
		case "explain":
			runExplain(os.Args[2:])
			return
		case "fuzz":
			runFuzz(os.Args[2:])
			return
		case "trace":
			runTraceCmd(os.Args[2:])
			return
		}
	}
	var (
		modelF   = flag.String("model", "pso", "memory model: sc, tso, pso")
		specF    = flag.String("spec", "sc", "criterion: safety, sc, lin")
		seqF     = flag.String("seq", "deque", "sequential specification: deque, wsq-lifo, wsq-fifo, queue, set, alloc")
		execs    = flag.Int("execs", 1000, "executions per round (K)")
		rounds   = flag.Int("rounds", 10, "maximum repair rounds")
		flushP   = flag.Float64("flush", 0, "flush probability (0 = model default, negative = never flush early)")
		seed     = flag.Int64("seed", 1, "random seed")
		execTO   = flag.Duration("exec-timeout", 0, "wall-clock budget per execution (0 = none)")
		deadline = flag.Duration("deadline", 0, "wall-clock budget for the whole synthesis (0 = none)")
		minConc  = flag.Float64("min-conclusive", 0, "conclusive fraction a violation-free round needs to converge (0 = default 0.5, negative = disabled)")
		maxMod   = flag.Int("max-models", 0, "cap on minimal-model enumeration per round (0 = default 4096, negative = unlimited)")
		jobs     = flag.Int("j", 0, "parallel workers for the execution engine (0 = NumCPU); results are identical for any value")
		validate = flag.Bool("validate", true, "prune redundant fences after convergence")
		disasm   = flag.Bool("disasm", false, "print compiled IR and exit")
		optimize = flag.Bool("optimize", false, "run the IR optimizer (fold/propagate/DCE) before analysis")
		withCAS  = flag.Bool("cas", false, "enforce predicates with dummy-location CAS instead of fences (TSO only, §4.2)")
		builtin  = flag.String("builtin", "", "use a built-in benchmark (see cmd/experiments -table2)")
		witness  = flag.Bool("witness", false, "print the captured counterexample schedule")
		explainW = flag.Bool("explain", false, "render the violation witness as an interleaving report")
		redund   = flag.Bool("redundant", false, "discover redundant fences in an already-fenced program (§6.3.1) instead of synthesizing")
		static   = flag.Bool("static", false, "consult the static delay-set analysis: skip dynamic rounds when the program is provably robust, and prune proposed predicates to the static critical cycles")
		resumeF  = flag.String("resume", "", "resume an interrupted run from this journal (program and config come from the journal; only -j applies)")
		journalF = flag.String("journal", "", "write a JSONL run journal to this file")
		listenF  = flag.String("listen", "", "serve /metrics, /runz, and /debug/pprof on this address (e.g. :6060)")
		metOut   = flag.String("metrics-out", "", "write an OpenMetrics snapshot to this file at exit")
		traceF   = flag.String("trace", "", "write the run's span trace (Perfetto-loadable JSON) to this file at exit")
		maxIters = flag.Int("max-iters", 0, "deterministic scheduler-iteration budget per execution (0 = none); over-budget runs count as inconclusive")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf  = flag.String("memprofile", "", "write a heap (allocs) profile to this file on exit")
	)
	flag.Parse()

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dfence:", err)
		os.Exit(1)
	}
	defer stopProf()
	// os.Exit skips deferred calls; error paths below flush profiles first.
	exit := func(code int) {
		stopProf()
		os.Exit(code)
	}

	var (
		prog    *ir.Program
		src     string
		model   memmodel.Model
		crit    spec.Criterion
		cfg     core.Config
		seqName string
		journal *telemetry.Journal
	)
	resuming := *resumeF != ""
	if resuming {
		if *disasm || *redund {
			fmt.Fprintln(os.Stderr, "dfence: -resume cannot be combined with -disasm or -redundant")
			exit(1)
		}
		var rr resumedRun
		rr, err = openResume(*resumeF)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dfence:", err)
			exit(1)
		}
		prog, src = rr.prog, rr.start.Source
		model, crit, cfg = rr.model, rr.crit, rr.cfg
		seqName, journal = rr.start.SeqSpec, rr.journal
		cfg.Workers = *jobs
		cfg.ExecTimeout, cfg.Deadline = *execTO, *deadline
		if rr.state != nil {
			fmt.Fprintf(os.Stderr, "resuming after round %d (%d executions journaled)\n",
				rr.state.Round, rr.state.TotalExecutions)
		} else {
			fmt.Fprintln(os.Stderr, "journal has no checkpoint; starting over from round 1")
		}
	} else {
		var benchmark *progs.Benchmark
		prog, src, benchmark, err = loadProgram(*builtin, flag.Args())
		if err != nil {
			fmt.Fprintln(os.Stderr, "dfence:", err)
			exit(1)
		}
		if *optimize {
			removed := ir.Optimize(prog)
			fmt.Fprintf(os.Stderr, "optimizer removed %d instructions\n", removed)
		}
		if *disasm {
			fmt.Print(prog.Disasm())
			return
		}

		model, err = memmodel.ParseModel(*modelF)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dfence:", err)
			exit(1)
		}
		var ok bool
		crit, ok = spec.ParseCriterion(*specF)
		if !ok {
			fmt.Fprintf(os.Stderr, "dfence: unknown criterion %q (want safety, sc, lin)\n", *specF)
			exit(1)
		}

		cfg = core.Config{
			Model:           model,
			Criterion:       crit,
			ExecsPerRound:   *execs,
			MaxRounds:       *rounds,
			FlushProb:       *flushP,
			Seed:            *seed,
			Workers:         *jobs,
			ValidateFences:  *validate,
			EnforceWithCAS:  *withCAS,
			ExecTimeout:     *execTO,
			Deadline:        *deadline,
			MinConclusive:   *minConc,
			MaxModels:       *maxMod,
			MaxItersPerExec: *maxIters,
			StaticPrune:     *static,
		}
		if benchmark != nil {
			cfg.NewSpec = benchmark.NewSpec()
			cfg.CheckGarbage = benchmark.CheckGarbage
			cfg.RelaxStealAborts = benchmark.RelaxStealAborts
			seqName = benchmark.SpecName
		} else if crit != spec.MemorySafety {
			newSpec, err := spec.ByName(*seqF)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dfence:", err)
				exit(1)
			}
			cfg.NewSpec = newSpec
			seqName = *seqF
		}
	}

	// Telemetry setup. The witness capture sink always runs (it is two
	// type switches per cold event); metrics only when something will read
	// them, and the journal/server only on request.
	workers := *jobs
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	wc := &witnessCapture{}
	sinks := []telemetry.Sink{wc}
	if !resuming && *journalF != "" {
		journal, err = telemetry.CreateJournal(*journalF)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dfence:", err)
			exit(1)
		}
	}
	if journal != nil {
		// Fsync at checkpoints and convergence, so even kill -9 leaves a
		// resumable journal.
		journal.SyncOnCheckpoint(true)
		sinks = append(sinks, journal)
	}
	var reg *telemetry.Registry
	if *listenF != "" || *metOut != "" {
		reg = telemetry.NewRegistry(workers)
		cfg.Metrics = telemetry.NewMetrics(reg)
	}
	var tracer *trace.Tracer
	if *traceF != "" {
		tracer = trace.New(trace.Options{Lanes: workers})
		cfg.Tracer = tracer
	}
	if *listenF != "" {
		status := &telemetry.Status{}
		sinks = append(sinks, status)
		srv := &telemetry.Server{Registry: reg, Status: status}
		if tracer != nil {
			srv.Tracez = tracer.Summary
		}
		bound, shutdown, err := srv.Start(*listenF)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dfence:", err)
			exit(1)
		}
		defer shutdown()
		fmt.Fprintf(os.Stderr, "introspection server on http://%s\n", bound)
	}
	cfg.Sink = telemetry.MultiSink(sinks...)
	finishTelemetry := func() {
		if journal != nil {
			if err := journal.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "dfence: journal:", err)
			}
		}
		if *metOut != "" && reg != nil {
			f, err := os.Create(*metOut)
			if err == nil {
				err = reg.WriteOpenMetrics(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "dfence: metrics-out:", err)
			}
		}
		if tracer != nil {
			if err := tracer.WriteJSONFile(*traceF); err != nil {
				fmt.Fprintln(os.Stderr, "dfence: trace:", err)
			}
		}
	}

	if *redund {
		labels, err := core.FindRedundantFences(prog, cfg, 0)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dfence:", err)
			exit(1)
		}
		fmt.Printf("fences in program: %d\n", len(prog.Fences()))
		fmt.Printf("redundant under %v/%v: %d\n", model, crit, len(labels))
		for _, l := range labels {
			in := prog.InstrAt(l)
			fn := prog.FuncOf(l)
			fmt.Printf("  %v in %s (line %d)\n", in.Kind, fn.Name, in.Line)
		}
		finishTelemetry()
		return
	}

	if !resuming {
		telemetry.Emit(cfg.Sink, telemetry.RunStart{
			Model:         model.String(),
			Criterion:     crit.String(),
			SeqSpec:       seqName,
			Seed:          *seed,
			Execs:         *execs,
			MaxRounds:     *rounds,
			FlushProb:     effectiveFlushProb(*flushP, model),
			Workers:       workers,
			Source:        src,
			Builtin:       *builtin,
			Validate:      *validate,
			Static:        *static,
			CAS:           *withCAS,
			MinConclusive: *minConc,
			MaxModels:     *maxMod,
			MaxIters:      *maxIters,
		})
	}

	// First SIGINT: stop at the next round boundary (the journal then ends
	// in a checkpoint and the run is resumable with zero lost work). Second
	// SIGINT: abort immediately.
	interrupt := make(chan struct{})
	cfg.Interrupt = interrupt
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt)
	go func() {
		<-sigCh
		fmt.Fprintln(os.Stderr, "dfence: interrupt — stopping at the next round boundary (^C again to abort)")
		close(interrupt)
		<-sigCh
		fmt.Fprintln(os.Stderr, "dfence: aborted")
		stopProf()
		os.Exit(130)
	}()

	res, err := core.Synthesize(prog, cfg)
	signal.Stop(sigCh)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dfence:", err)
		finishTelemetry()
		exit(1)
	}
	report(res, model, crit)
	if res.Interrupted {
		jpath := *journalF
		if resuming {
			jpath = *resumeF
		}
		if jpath != "" {
			fmt.Fprintf(os.Stderr, "dfence: interrupted at a round boundary; continue with:\n  dfence -resume %s\n", jpath)
		} else {
			fmt.Fprintln(os.Stderr, "dfence: interrupted at a round boundary; no -journal was given, so the partial run cannot be resumed")
		}
	}
	if *witness && res.Witness != nil {
		fmt.Printf("witness schedule: %s\n", res.Witness)
	}
	// The full witness explanation: on request, and always embedded in the
	// failure output of an unfixable program (the witness ran against the
	// program before the first fence round, i.e. the loaded program).
	if res.Witness != nil && (*explainW || res.Unfixable) {
		opts := telemetry.ExplainOptions{Desc: res.WitnessViolation}
		if v := wc.witness(); v != nil {
			opts.Round, opts.Seed, opts.Disjunction = v.Round, v.Seed, v.Disjunction
		}
		if txt, eerr := telemetry.ExplainWitness(prog, res.Witness, opts); eerr == nil {
			fmt.Println()
			fmt.Print(txt)
		} else {
			fmt.Fprintln(os.Stderr, "dfence: explain:", eerr)
		}
	}
	finishTelemetry()
	if res.Unfixable {
		exit(3)
	}
	if res.Interrupted {
		exit(130)
	}
}

// resumedRun is everything openResume reconstructs from a journal.
type resumedRun struct {
	prog    *ir.Program
	start   *telemetry.RunStart
	model   memmodel.Model
	crit    spec.Criterion
	cfg     core.Config
	state   *core.ResumeState
	journal *telemetry.Journal
}

// openResume rebuilds an interrupted run from its journal: the program
// from the embedded source or builtin name, the determinism-relevant
// configuration from the RunStart record, and the synthesis position from
// the last checkpoint. The journal is truncated past that checkpoint
// (dropping any torn tail a crash left) and reopened for appending, so
// the resumed run continues the same file.
func openResume(path string) (resumedRun, error) {
	var rr resumedRun

	// Lenient pre-read to reject journals that already record a finished
	// run — ResumeJournal would otherwise truncate a completed journal
	// back to its last checkpoint and re-run the tail.
	f, err := os.Open(path)
	if err != nil {
		return rr, err
	}
	events, _, err := telemetry.ReadJournalOptions(f, telemetry.ReadOptions{AllowTornTail: true})
	f.Close()
	if err != nil {
		return rr, err
	}
	jr := telemetry.SummarizeJournal(events)
	if jr.Start == nil {
		return rr, fmt.Errorf("%s: journal has no RunStart event; nothing to resume", path)
	}
	if jr.Converged != nil && jr.Converged.Outcome != core.OutcomeAborted.String() {
		return rr, fmt.Errorf("%s: journal records a completed run (outcome %s); nothing to resume", path, jr.Converged.Outcome)
	}
	rr.start = jr.Start

	rr.model, err = memmodel.ParseModel(jr.Start.Model)
	if err != nil {
		return rr, err
	}
	var ok bool
	rr.crit, ok = spec.ParseCriterion(jr.Start.Criterion)
	if !ok {
		return rr, fmt.Errorf("%s: journal has unknown criterion %q", path, jr.Start.Criterion)
	}
	var benchmark *progs.Benchmark
	switch {
	case jr.Start.Source != "":
		rr.prog, err = lang.Compile(jr.Start.Source)
		if err != nil {
			return rr, fmt.Errorf("recompiling journaled source: %w", err)
		}
	case jr.Start.Builtin != "":
		benchmark, err = progs.ByName(jr.Start.Builtin)
		if err != nil {
			return rr, err
		}
		rr.prog = benchmark.Program()
	default:
		return rr, fmt.Errorf("%s: journal carries neither source nor builtin name; cannot rebuild the program", path)
	}

	// RunStart.FlushProb is the probability the run actually used
	// (effectiveFlushProb), so 0 can only mean "never flush early" — the
	// config spells that with a negative sentinel.
	flush := jr.Start.FlushProb
	if flush == 0 {
		flush = -1
	}
	rr.cfg = core.Config{
		Model:           rr.model,
		Criterion:       rr.crit,
		ExecsPerRound:   jr.Start.Execs,
		MaxRounds:       jr.Start.MaxRounds,
		FlushProb:       flush,
		Seed:            jr.Start.Seed,
		ValidateFences:  jr.Start.Validate,
		StaticPrune:     jr.Start.Static,
		EnforceWithCAS:  jr.Start.CAS,
		MinConclusive:   jr.Start.MinConclusive,
		MaxModels:       jr.Start.MaxModels,
		MaxStepsPerExec: jr.Start.MaxSteps,
		MaxItersPerExec: jr.Start.MaxIters,
	}
	if benchmark != nil {
		rr.cfg.NewSpec = benchmark.NewSpec()
		rr.cfg.CheckGarbage = benchmark.CheckGarbage
		rr.cfg.RelaxStealAborts = benchmark.RelaxStealAborts
	} else if rr.crit != spec.MemorySafety {
		newSpec, err := spec.ByName(jr.Start.SeqSpec)
		if err != nil {
			return rr, err
		}
		rr.cfg.NewSpec = newSpec
	}

	journal, kept, err := telemetry.ResumeJournal(path)
	if err != nil {
		return rr, err
	}
	rr.state, err = core.ResumeFromEvents(kept)
	if err != nil {
		journal.Close()
		return rr, err
	}
	rr.cfg.Resume = rr.state
	rr.journal = journal
	return rr, nil
}

// effectiveFlushProb resolves the -flush flag the way core.Config.fill
// does, so the journal records the probability the run actually used.
func effectiveFlushProb(p float64, model memmodel.Model) float64 {
	if p < 0 {
		return 0
	}
	if p == 0 {
		if model == memmodel.TSO {
			return 0.1
		}
		return 0.5
	}
	return p
}

// witnessCapture remembers the first journaled Violation that carries a
// trace — the run's witness — so the live explanation can cite its round,
// seed, and repair disjunction without re-deriving them.
type witnessCapture struct {
	mu sync.Mutex
	v  *telemetry.Violation
}

func (wc *witnessCapture) Emit(e telemetry.Event) {
	v, ok := e.(telemetry.Violation)
	if !ok || len(v.Trace) == 0 {
		return
	}
	wc.mu.Lock()
	if wc.v == nil {
		wc.v = &v
	}
	wc.mu.Unlock()
}

func (wc *witnessCapture) witness() *telemetry.Violation {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	return wc.v
}

// runExplain implements `dfence explain journal.jsonl`: decode the
// journal (strictly — schema drift is an error, not a shrug), rebuild the
// program it ran from the embedded source or builtin name, re-apply the
// fences each witness's round had already inserted, and render every
// witness as an interleaving report.
func runExplain(args []string) {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	maxSteps := fs.Int("max-steps", 0, "cap the rendered interleaving (0 = 400; longer replays elide the middle)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: dfence explain [-max-steps n] run.jsonl")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 1 {
		fs.Usage()
		os.Exit(2)
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "dfence explain:", err)
		os.Exit(1)
	}
	events, err := telemetry.ReadJournalFile(fs.Arg(0))
	if err != nil {
		fail(err)
	}
	jr := telemetry.SummarizeJournal(events)
	if jr.Start == nil {
		fail(fmt.Errorf("%s: journal has no RunStart event", fs.Arg(0)))
	}
	model, err := memmodel.ParseModel(jr.Start.Model)
	if err != nil {
		fail(err)
	}
	var prog *ir.Program
	switch {
	case jr.Start.Source != "":
		prog, err = lang.Compile(jr.Start.Source)
		if err != nil {
			fail(fmt.Errorf("recompiling journaled source: %w", err))
		}
	case jr.Start.Builtin != "":
		b, berr := progs.ByName(jr.Start.Builtin)
		if berr != nil {
			fail(berr)
		}
		prog = b.Program()
	default:
		fail(fmt.Errorf("%s: journal carries neither source nor builtin name; cannot rebuild the program", fs.Arg(0)))
	}

	wits := jr.Witnesses()
	if len(wits) == 0 {
		fmt.Printf("%s: %d violation(s) journaled, none with a witness trace\n", fs.Arg(0), len(jr.Violations))
		if jr.Converged != nil {
			fmt.Printf("run outcome: %s after %d round(s), %d executions, %d fence(s)\n",
				jr.Converged.Outcome, jr.Converged.Rounds, jr.Converged.TotalExecutions, jr.Converged.Fences)
		}
		os.Exit(1)
	}
	for i, v := range wits {
		if i > 0 {
			fmt.Println()
		}
		// The witness ran against the program plus every fence inserted in
		// the rounds before its own.
		p := prog.Clone()
		if fences := jr.FencesBefore(v.Round); len(fences) > 0 {
			ins, ferr := telemetry.InsertedFences(fences)
			if ferr != nil {
				fail(ferr)
			}
			if _, ferr := synth.InsertFences(p, ins); ferr != nil {
				fail(ferr)
			}
		}
		txt, eerr := telemetry.ExplainWitness(p, telemetry.TraceFrom(v.Trace, model), telemetry.ExplainOptions{
			Round:       v.Round,
			Seed:        v.Seed,
			Desc:        v.Desc,
			Disjunction: v.Disjunction,
			MaxSteps:    *maxSteps,
		})
		if eerr != nil {
			fail(eerr)
		}
		fmt.Print(txt)
	}
	if jr.Converged != nil {
		fmt.Printf("\nrun outcome: %s after %d round(s), %d executions, %d fence(s)\n",
			jr.Converged.Outcome, jr.Converged.Rounds, jr.Converged.TotalExecutions, jr.Converged.Fences)
	}
}

// runAnalyze implements the `dfence analyze` subcommand: verify the
// program's IR and print its static delay-set analysis — thread roots,
// conflict edges, candidate pairs, and the delay pairs on critical cycles
// with one witness cycle each — without running a single execution.
func runAnalyze(args []string) {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	var (
		modelF  = fs.String("model", "pso", "memory model: sc, tso, pso, rmo")
		builtin = fs.String("builtin", "", "analyze a built-in benchmark instead of a file")
		fix     = fs.Bool("fix", false, "synthesize a minimum-cost static fence placement and print the fenced program")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: dfence analyze [-model sc|tso|pso|rmo] [-fix] program.mc (or -builtin name)")
		fs.PrintDefaults()
	}
	fs.Parse(args)

	model, err := memmodel.ParseModel(*modelF)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dfence analyze:", err)
		os.Exit(1)
	}
	prog, _, _, err := loadProgram(*builtin, fs.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "dfence analyze:", err)
		os.Exit(1)
	}
	// Always canonicalize: lowering materializes a copy of every loaded
	// value, and under load-deferring models that copy is a dependency
	// that kills every ld-class delay pair — for the analysis and the
	// interpreter alike, so analyzing raw lowered IR silently reports
	// load-relaxed programs robust. The fuzz corpus optimizes for the
	// same reason (proggen.Prog.Compile).
	ir.Optimize(prog)
	if *fix {
		fr, err := staticanalysis.Fix(prog, model)
		if err != nil {
			analyzeFatal(err)
		}
		fmt.Print(fr.Analysis.Report(prog))
		fmt.Print(fr.Report(prog))
		if len(fr.Placements) > 0 {
			fenced := prog.Clone()
			if err := staticanalysis.Apply(fenced, fr.Placements); err != nil {
				fmt.Fprintln(os.Stderr, "dfence analyze:", err)
				os.Exit(1)
			}
			fmt.Println("\nfenced program:")
			fmt.Print(fenced.Disasm())
		}
		return
	}
	res, err := staticanalysis.Analyze(prog, model)
	if err != nil {
		analyzeFatal(err)
	}
	fmt.Print(res.Report(prog))
}

// analyzeFatal prints an analysis error (expanding verifier findings) and
// exits.
func analyzeFatal(err error) {
	var verr *staticanalysis.VerifyError
	if errors.As(err, &verr) {
		fmt.Fprintf(os.Stderr, "dfence analyze: IR verification failed (%d finding(s)):\n", len(verr.Diags))
		for _, d := range verr.Diags {
			fmt.Fprintf(os.Stderr, "  %s\n", d)
		}
		os.Exit(2)
	}
	fmt.Fprintln(os.Stderr, "dfence analyze:", err)
	os.Exit(1)
}

// loadProgram resolves -builtin or a source path. The returned src is the
// mini-C text for file runs ("" for builtins) — what RunStart embeds so
// `dfence explain` can rebuild the program from the journal alone.
func loadProgram(builtin string, args []string) (*ir.Program, string, *progs.Benchmark, error) {
	if builtin != "" {
		b, err := progs.ByName(builtin)
		if err != nil {
			return nil, "", nil, err
		}
		return b.Program(), "", b, nil
	}
	if len(args) != 1 {
		return nil, "", nil, fmt.Errorf("usage: dfence [flags] program.mc (or -builtin name)")
	}
	src, err := os.ReadFile(args[0])
	if err != nil {
		return nil, "", nil, err
	}
	prog, err := lang.Compile(string(src))
	if err != nil {
		return nil, "", nil, fmt.Errorf("%s: %w", args[0], err)
	}
	return prog, string(src), nil, nil
}

// report prints the run header and delegates the body to the unified
// renderer in core (Result.Summary), which cmd/experiments shares — the
// two front-ends cannot drift.
func report(res *core.Result, model memmodel.Model, crit spec.Criterion) {
	fmt.Printf("model=%v spec=%v\n", model, crit)
	fmt.Println(res.Summary())
}
