// Command dfence synthesizes memory fences for a concurrent mini-C
// program, the way the paper's DFENCE tool consumed a C algorithm plus a
// client:
//
//	dfence -model pso -spec sc -seq deque program.mc
//
// The program must contain a main function acting as the client (forking
// worker threads that call the algorithm's operations, which are declared
// with the `operation` keyword). The tool repeatedly executes the program
// under the flush-delaying demonic scheduler, repairs the violating
// executions it finds, and prints the inferred fence placements.
//
// Flags:
//
//	-model   memory model: sc, tso, pso (default pso)
//	-spec    criterion: safety, sc, lin (default sc)
//	-seq     sequential spec for sc/lin: deque, wsq-lifo, wsq-fifo, queue, set, alloc
//	-execs   executions per round, K (default 1000)
//	-rounds  maximum repair rounds (default 10)
//	-flush   flush probability (0 = 0.1 tso / 0.5 pso, negative = never flush early)
//	-seed    random seed (default 1)
//	-j       parallel workers for the execution engine (default NumCPU)
//	-validate  prune redundant fences after convergence (default true)
//	-disasm  print the compiled IR and exit
//	-builtin use a built-in benchmark instead of a file (e.g. chase-lev)
//	-static  consult the static delay-set analysis: converge with zero
//	         executions when the delay set is empty, and prune proposed
//	         predicates to the static critical cycles
//
// The `analyze` subcommand runs only the static passes — the IR verifier
// and the delay-set analysis — and prints candidate pairs, delay pairs,
// and one witness critical cycle per delay, without executing anything:
//
//	dfence analyze -model pso program.mc
//	dfence analyze -model tso -builtin chase-lev
//
// Verifier findings print to stderr and exit with status 2.
//
// Resilience flags (see DESIGN.md, Resilience):
//
//	-exec-timeout    wall-clock budget per execution (0 = none); runs that
//	                 exceed it count as inconclusive
//	-deadline        wall-clock budget for the whole synthesis (0 = none);
//	                 on expiry the partial rounds are reported as aborted
//	-min-conclusive  floor on the conclusive fraction of a violation-free
//	                 round for it to count as convergence
//	                 (0 = default 0.5, negative = disabled)
//	-max-models      cap on minimal-model enumeration per round
//	                 (0 = default 4096, negative = unlimited)
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"dfence/internal/core"
	"dfence/internal/eval"
	"dfence/internal/ir"
	"dfence/internal/lang"
	"dfence/internal/memmodel"
	"dfence/internal/profiling"
	"dfence/internal/progs"
	"dfence/internal/spec"
	"dfence/internal/staticanalysis"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "analyze" {
		runAnalyze(os.Args[2:])
		return
	}
	var (
		modelF   = flag.String("model", "pso", "memory model: sc, tso, pso")
		specF    = flag.String("spec", "sc", "criterion: safety, sc, lin")
		seqF     = flag.String("seq", "deque", "sequential specification: deque, wsq-lifo, wsq-fifo, queue, set, alloc")
		execs    = flag.Int("execs", 1000, "executions per round (K)")
		rounds   = flag.Int("rounds", 10, "maximum repair rounds")
		flushP   = flag.Float64("flush", 0, "flush probability (0 = model default, negative = never flush early)")
		seed     = flag.Int64("seed", 1, "random seed")
		execTO   = flag.Duration("exec-timeout", 0, "wall-clock budget per execution (0 = none)")
		deadline = flag.Duration("deadline", 0, "wall-clock budget for the whole synthesis (0 = none)")
		minConc  = flag.Float64("min-conclusive", 0, "conclusive fraction a violation-free round needs to converge (0 = default 0.5, negative = disabled)")
		maxMod   = flag.Int("max-models", 0, "cap on minimal-model enumeration per round (0 = default 4096, negative = unlimited)")
		jobs     = flag.Int("j", 0, "parallel workers for the execution engine (0 = NumCPU); results are identical for any value")
		validate = flag.Bool("validate", true, "prune redundant fences after convergence")
		disasm   = flag.Bool("disasm", false, "print compiled IR and exit")
		optimize = flag.Bool("optimize", false, "run the IR optimizer (fold/propagate/DCE) before analysis")
		withCAS  = flag.Bool("cas", false, "enforce predicates with dummy-location CAS instead of fences (TSO only, §4.2)")
		builtin  = flag.String("builtin", "", "use a built-in benchmark (see cmd/experiments -table2)")
		witness  = flag.Bool("witness", false, "print the captured counterexample schedule")
		redund   = flag.Bool("redundant", false, "discover redundant fences in an already-fenced program (§6.3.1) instead of synthesizing")
		static   = flag.Bool("static", false, "consult the static delay-set analysis: skip dynamic rounds when the program is provably robust, and prune proposed predicates to the static critical cycles")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf  = flag.String("memprofile", "", "write a heap (allocs) profile to this file on exit")
	)
	flag.Parse()

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dfence:", err)
		os.Exit(1)
	}
	defer stopProf()
	// os.Exit skips deferred calls; error paths below flush profiles first.
	exit := func(code int) {
		stopProf()
		os.Exit(code)
	}

	prog, benchmark, err := loadProgram(*builtin, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "dfence:", err)
		exit(1)
	}
	if *optimize {
		removed := ir.Optimize(prog)
		fmt.Fprintf(os.Stderr, "optimizer removed %d instructions\n", removed)
	}
	if *disasm {
		fmt.Print(prog.Disasm())
		return
	}

	model, err := memmodel.ParseModel(*modelF)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dfence:", err)
		exit(1)
	}
	crit, ok := spec.ParseCriterion(*specF)
	if !ok {
		fmt.Fprintf(os.Stderr, "dfence: unknown criterion %q (want safety, sc, lin)\n", *specF)
		exit(1)
	}

	cfg := core.Config{
		Model:          model,
		Criterion:      crit,
		ExecsPerRound:  *execs,
		MaxRounds:      *rounds,
		FlushProb:      *flushP,
		Seed:           *seed,
		Workers:        *jobs,
		ValidateFences: *validate,
		EnforceWithCAS: *withCAS,
		ExecTimeout:    *execTO,
		Deadline:       *deadline,
		MinConclusive:  *minConc,
		MaxModels:      *maxMod,
		StaticPrune:    *static,
	}
	if benchmark != nil {
		cfg.NewSpec = benchmark.NewSpec()
		cfg.CheckGarbage = benchmark.CheckGarbage
		cfg.RelaxStealAborts = benchmark.RelaxStealAborts
	} else if crit != spec.MemorySafety {
		newSpec, err := spec.ByName(*seqF)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dfence:", err)
			exit(1)
		}
		cfg.NewSpec = newSpec
	}

	if *redund {
		labels, err := core.FindRedundantFences(prog, cfg, 0)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dfence:", err)
			exit(1)
		}
		fmt.Printf("fences in program: %d\n", len(prog.Fences()))
		fmt.Printf("redundant under %v/%v: %d\n", model, crit, len(labels))
		for _, l := range labels {
			in := prog.InstrAt(l)
			fn := prog.FuncOf(l)
			fmt.Printf("  %v in %s (line %d)\n", in.Kind, fn.Name, in.Line)
		}
		return
	}

	res, err := core.Synthesize(prog, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dfence:", err)
		exit(1)
	}
	report(res, model, crit)
	if *witness && res.Witness != nil {
		fmt.Printf("witness schedule: %s\n", res.Witness)
	}
	if res.Unfixable {
		exit(3)
	}
}

// runAnalyze implements the `dfence analyze` subcommand: verify the
// program's IR and print its static delay-set analysis — thread roots,
// conflict edges, candidate pairs, and the delay pairs on critical cycles
// with one witness cycle each — without running a single execution.
func runAnalyze(args []string) {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	var (
		modelF  = fs.String("model", "pso", "memory model: sc, tso, pso")
		builtin = fs.String("builtin", "", "analyze a built-in benchmark instead of a file")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: dfence analyze [-model sc|tso|pso] program.mc (or -builtin name)")
		fs.PrintDefaults()
	}
	fs.Parse(args)

	model, err := memmodel.ParseModel(*modelF)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dfence analyze:", err)
		os.Exit(1)
	}
	prog, _, err := loadProgram(*builtin, fs.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "dfence analyze:", err)
		os.Exit(1)
	}
	res, err := staticanalysis.Analyze(prog, model)
	if err != nil {
		var verr *staticanalysis.VerifyError
		if errors.As(err, &verr) {
			fmt.Fprintf(os.Stderr, "dfence analyze: IR verification failed (%d finding(s)):\n", len(verr.Diags))
			for _, d := range verr.Diags {
				fmt.Fprintf(os.Stderr, "  %s\n", d)
			}
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "dfence analyze:", err)
		os.Exit(1)
	}
	fmt.Print(res.Report(prog))
}

func loadProgram(builtin string, args []string) (*ir.Program, *progs.Benchmark, error) {
	if builtin != "" {
		b, err := progs.ByName(builtin)
		if err != nil {
			return nil, nil, err
		}
		return b.Program(), b, nil
	}
	if len(args) != 1 {
		return nil, nil, fmt.Errorf("usage: dfence [flags] program.mc (or -builtin name)")
	}
	src, err := os.ReadFile(args[0])
	if err != nil {
		return nil, nil, err
	}
	prog, err := lang.Compile(string(src))
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", args[0], err)
	}
	return prog, nil, nil
}

func report(res *core.Result, model memmodel.Model, crit spec.Criterion) {
	fmt.Printf("model=%v spec=%v rounds=%d executions=%d", model, crit, len(res.Rounds), res.TotalExecutions)
	if res.TotalInconclusive > 0 {
		fmt.Printf(" inconclusive=%d", res.TotalInconclusive)
	}
	fmt.Println()
	for i, r := range res.Rounds {
		fmt.Printf("  round %d: %d/%d executions violated, %d predicates, %d clauses, %d fences inserted (%.0f execs/s)",
			i+1, r.Violations, r.Executions, r.Predicates, r.DistinctClauses, len(r.Inserted), r.ExecsPerSec)
		if r.Inconclusive > 0 || r.Skipped > 0 {
			fmt.Printf(", %d inconclusive (%d errored), %d skipped, %.0f%% conclusive",
				r.Inconclusive, r.Errors, r.Skipped, 100*r.ConclusiveFraction())
		}
		fmt.Println()
	}
	if res.StaticallyRobust {
		fmt.Println("static analysis: delay set empty — program proved robust, no dynamic rounds needed")
	} else if res.StaticCandidates > 0 {
		fmt.Printf("static analysis: %d candidate pairs, %d on critical cycles; %d dynamic predicates pruned\n",
			res.StaticCandidates, res.StaticDelayPairs, res.PrunedPredicates)
	}
	switch res.Outcome {
	case core.OutcomeUnfixable:
		fmt.Println("result: CANNOT SATISFY — a violation has no fence-based repair")
		fmt.Println("  example:", res.UnfixableExample)
	case core.OutcomeAborted:
		fmt.Println("result: aborted — the -deadline expired; rounds above are partial")
	case core.OutcomeInconclusive:
		fmt.Println("result: inconclusive — round budget exhausted without a conclusive violation-free round")
	default:
		fmt.Println("result: converged")
	}
	if res.SolverTruncated {
		fmt.Println("note: solver enumeration hit its budget; repairs are best-effort, not provably minimal")
	}
	for _, e := range res.ExecErrors {
		fmt.Printf("note: %v\n", e)
	}
	if res.Redundant > 0 {
		fmt.Printf("validation pruned %d redundant fence(s) of %d synthesized\n", res.Redundant, res.SynthesizedFences)
	}
	if res.Witness != nil {
		fmt.Printf("witness (%s): %d scheduling decisions, replayable with sched.Replay\n",
			res.WitnessViolation, res.Witness.Len())
	}
	if len(res.Fences) == 0 {
		fmt.Println("fences required: none")
		return
	}
	fmt.Printf("fences required: %d\n", len(res.Fences))
	for _, f := range res.Fences {
		d := eval.DescribeFence(res.Program, f)
		fmt.Printf("  %v %s\n", f.Kind, d)
	}
}
