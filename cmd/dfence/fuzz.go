// The `dfence fuzz` subcommand: run a differential fuzzing campaign
// (internal/proggen) and persist its findings. The oracle itself never
// touches the filesystem — this file owns all I/O: the JSONL campaign
// journal, one .mc reproduction file per divergence (shrunk when
// available), and the exit status CI gates on.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"dfence/internal/memmodel"
	"dfence/internal/proggen"
)

// runFuzz implements `dfence fuzz`. Exit status: 0 when the campaign
// finished with zero divergences, 1 when any divergence (or an output
// error) occurred, 2 on flag misuse.
func runFuzz(args []string) {
	fs := flag.NewFlagSet("fuzz", flag.ExitOnError)
	var (
		seed       = fs.Int64("seed", 1, "campaign seed (same seed, same flags => identical report)")
		n          = fs.Int("n", 200, "corpus size (cycle-shape templates + seeded random programs)")
		modelsF    = fs.String("models", "tso,pso,rmo", "comma-separated weak models to cross-check (SC is always the enumeration baseline)")
		execs      = fs.Int("execs", 160, "dynamic sampling budget per (program, model); synthesis uses the same per round")
		rounds     = fs.Int("rounds", 8, "maximum synthesis repair rounds per program")
		enumStates = fs.Int("enum-states", 0, "exhaustive-enumeration state budget (0 = default 60000)")
		outDir     = fs.String("out", "", "write the campaign journal and one repro .mc per divergence to this directory")
		verbose    = fs.Bool("v", false, "log per-program progress and divergences as they are found")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: dfence fuzz [-seed n] [-n programs] [-models tso,pso,rmo] [-execs k] [-out dir] [-v]")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 0 {
		fs.Usage()
		os.Exit(2)
	}

	var models []memmodel.Model
	for _, name := range strings.Split(*modelsF, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		m, err := memmodel.ParseModel(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dfence fuzz:", err)
			os.Exit(2)
		}
		if m == memmodel.SC {
			// SC is the ground-truth baseline of every check; fuzzing
			// "SC vs SC" would only dilute the budget.
			continue
		}
		models = append(models, m)
	}

	cfg := proggen.FuzzConfig{
		Seed:      *seed,
		N:         *n,
		Models:    models,
		Execs:     *execs,
		MaxRounds: *rounds,
		Enum:      proggen.EnumOptions{MaxStates: *enumStates},
	}
	if *verbose {
		cfg.Logf = func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", a...)
		}
	}

	rep := proggen.Fuzz(cfg)

	if *outDir != "" {
		if err := writeFuzzArtifacts(*outDir, rep); err != nil {
			fmt.Fprintln(os.Stderr, "dfence fuzz:", err)
			os.Exit(1)
		}
	}

	printFuzzReport(rep)
	if len(rep.Divergences) > 0 {
		os.Exit(1)
	}
}

// printFuzzReport renders the campaign summary humans read; the JSONL
// journal is the machine-readable twin.
func printFuzzReport(rep *proggen.FuzzReport) {
	fmt.Printf("fuzz: seed=%d programs=%d (templates=%d randoms=%d injected=%d) checks=%d\n",
		rep.Seed, rep.Programs, rep.Templates, rep.Randoms, rep.Injected, rep.Checked)
	fmt.Printf("fuzz: violating=%d robust-pairs=%d escalated=%d sampling-misses=%d enum-partial=%d\n",
		rep.Violating, rep.Robust, rep.Escalated, rep.SamplingMisses, rep.EnumPartial)
	for _, note := range rep.Notes {
		fmt.Printf("fuzz: note: %s\n", note)
	}
	if len(rep.Divergences) == 0 {
		fmt.Println("fuzz: PASS — no divergences")
		return
	}
	fmt.Printf("fuzz: FAIL — %d divergence(s)\n", len(rep.Divergences))
	for _, d := range rep.Divergences {
		fmt.Printf("fuzz: divergence %v\n", d)
		src := d.ShrunkSource
		if src == "" {
			src = d.Source
		}
		fmt.Println(indent(src, "    "))
	}
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = prefix + l
	}
	return strings.Join(lines, "\n")
}

// fuzzJournalEntry is one line of the campaign journal: either the
// summary line (Kind "summary") or one divergence.
type fuzzJournalEntry struct {
	Kind         string   `json:"kind"`
	Seed         int64    `json:"seed"`
	Index        int      `json:"index,omitempty"`
	Model        string   `json:"model,omitempty"`
	Detail       string   `json:"detail,omitempty"`
	Source       string   `json:"source,omitempty"`
	ShrunkSource string   `json:"shrunk_source,omitempty"`
	Repro        string   `json:"repro,omitempty"` // repro file name, relative to the out dir
	Programs     int      `json:"programs,omitempty"`
	Checked      int      `json:"checked,omitempty"`
	Violating    int      `json:"violating,omitempty"`
	Escalated    int      `json:"escalated,omitempty"`
	SamplingMiss int      `json:"sampling_misses,omitempty"`
	EnumPartial  int      `json:"enum_partial,omitempty"`
	Divergences  int      `json:"divergences"`
	Notes        []string `json:"notes,omitempty"`
}

// writeFuzzArtifacts persists the campaign under dir: fuzz.jsonl (one
// summary line plus one line per divergence) and repro-<index>-<kind>.mc
// holding the minimized source of each divergence.
func writeFuzzArtifacts(dir string, rep *proggen.FuzzReport) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var lines []fuzzJournalEntry
	lines = append(lines, fuzzJournalEntry{
		Kind:         "summary",
		Seed:         rep.Seed,
		Programs:     rep.Programs,
		Checked:      rep.Checked,
		Violating:    rep.Violating,
		Escalated:    rep.Escalated,
		SamplingMiss: rep.SamplingMisses,
		EnumPartial:  rep.EnumPartial,
		Divergences:  len(rep.Divergences),
		Notes:        rep.Notes,
	})
	for _, d := range rep.Divergences {
		src := d.ShrunkSource
		if src == "" {
			src = d.Source
		}
		name := fmt.Sprintf("repro-%d-%s.mc", d.Index, sanitize(d.Kind))
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			return err
		}
		lines = append(lines, fuzzJournalEntry{
			Kind:         d.Kind,
			Seed:         rep.Seed,
			Index:        d.Index,
			Model:        d.Model.String(),
			Detail:       d.Detail,
			Source:       d.Source,
			ShrunkSource: d.ShrunkSource,
			Repro:        name,
			Divergences:  len(rep.Divergences),
		})
	}
	f, err := os.Create(filepath.Join(dir, "fuzz.jsonl"))
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	for _, l := range lines {
		if err := enc.Encode(l); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

// sanitize maps a divergence kind to a filename-safe slug.
func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
			return r
		default:
			return '-'
		}
	}, s)
}
