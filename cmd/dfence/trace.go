package main

import (
	"flag"
	"fmt"
	"os"

	"dfence/internal/trace"
)

// runTraceCmd implements `dfence trace run.trace.json`: read a recorded
// span trace (strictly — a malformed file is an error, not a partial
// summary) and print the terminal breakdown.
func runTraceCmd(args []string) {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: dfence trace run.trace.json")
		fmt.Fprintln(os.Stderr, "\nSummarizes a span trace recorded with -trace: per-phase and per-round")
		fmt.Fprintln(os.Stderr, "wall breakdown, worker utilization, and portfolio-phase attribution.")
	}
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		fs.Usage()
		os.Exit(2)
	}
	d, err := trace.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "dfence:", err)
		os.Exit(1)
	}
	fmt.Print(trace.Summarize(d))
}
