// Command benchgate compares two benchmark snapshots produced by
// cmd/benchjson and fails (exit 1) when the new run regressed past a
// threshold ratio. It is the stdlib-only gating half of the benchmark
// pipeline: benchstat (when installed) renders the human-readable
// comparison artifact, benchgate renders the verdict CI acts on.
//
//	benchgate -old BENCH_pr9.json -new /tmp/new.json \
//	    -bench 'BenchmarkExecutionEngine' -threshold 1.3
//
// For every benchmark whose name matches -bench and that appears in both
// snapshots, the gated metrics are compared directionally:
//
//   - ns/op (lower is better): fail if new > old * threshold;
//   - execs/s (higher is better): fail if new < old / threshold.
//
// Other metrics (B/op, allocs/op, steps/op, ...) are reported for
// context but never gate — allocation counts are exact and drift
// legitimately with code changes, and the deterministic counters are
// covered by tests, not benchmarks. The threshold is deliberately loose
// (default 1.3x) because CI machines are noisy; the gate exists to catch
// step-function regressions (a pooling path lost, an index gone
// quadratic), not percent-level drift.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
)

type benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type document struct {
	Benchmarks []benchmark `json:"benchmarks"`
}

// load reads a benchjson document and averages duplicate benchmark names
// (repeated -count runs) into one metric set per name.
func load(path string) (map[string]map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc document
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	sums := make(map[string]map[string]float64)
	counts := make(map[string]map[string]int)
	for _, b := range doc.Benchmarks {
		if sums[b.Name] == nil {
			sums[b.Name] = make(map[string]float64)
			counts[b.Name] = make(map[string]int)
		}
		for unit, v := range b.Metrics {
			sums[b.Name][unit] += v
			counts[b.Name][unit]++
		}
	}
	for name, m := range sums {
		for unit := range m {
			m[unit] /= float64(counts[name][unit])
		}
	}
	return sums, nil
}

func main() {
	oldPath := flag.String("old", "", "baseline benchjson snapshot (committed)")
	newPath := flag.String("new", "", "fresh benchjson snapshot to gate")
	benchRe := flag.String("bench", ".", "regexp selecting which benchmarks gate")
	threshold := flag.Float64("threshold", 1.3, "maximum tolerated regression ratio")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -old and -new are required")
		os.Exit(2)
	}
	re, err := regexp.Compile(*benchRe)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	oldB, err := load(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	newB, err := load(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}

	var names []string
	for name := range newB {
		if _, ok := oldB[name]; ok && re.MatchString(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: no benchmark matches %q in both snapshots\n", *benchRe)
		os.Exit(1)
	}

	failed := 0
	for _, name := range names {
		o, n := oldB[name], newB[name]
		for _, g := range []struct {
			unit        string
			lowerBetter bool
		}{{"ns/op", true}, {"execs/s", false}} {
			ov, okO := o[g.unit]
			nv, okN := n[g.unit]
			if !okO || !okN || ov == 0 || nv == 0 {
				continue
			}
			ratio := nv / ov
			verdict := "ok"
			bad := (g.lowerBetter && ratio > *threshold) ||
				(!g.lowerBetter && ratio < 1 / *threshold)
			if bad {
				verdict = "REGRESSED"
				failed++
			}
			fmt.Printf("%-60s %-10s old=%-14.4g new=%-14.4g ratio=%.3f %s\n",
				name, g.unit, ov, nv, ratio, verdict)
		}
	}
	if failed > 0 {
		fmt.Printf("benchgate: %d metric(s) regressed past %.2fx\n", failed, *threshold)
		os.Exit(1)
	}
	fmt.Printf("benchgate: all gated metrics within %.2fx of baseline\n", *threshold)
}
