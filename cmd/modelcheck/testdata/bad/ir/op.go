package ir
type FenceKind uint8
const (
	FenceFull FenceKind = iota
	FenceStoreStore
)
