package use
import ("m/memmodel"; "m/ir")
func f(m memmodel.Model, k ir.FenceKind) int {
	switch m {
	case memmodel.SC:
		return 0
	case memmodel.TSO, memmodel.PSO:
		return 1
	}
	switch k {
	case ir.FenceFull:
		return 2
	default:
		return 3
	}
}
