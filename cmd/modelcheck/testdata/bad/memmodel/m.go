package memmodel
type Model uint8
const (
	SC Model = iota
	TSO
	PSO
	RMO
)
