// Command modelcheck is a repo-local lint enforcing exhaustive switches
// over the two enums whose value sets the model hierarchy grows:
// memmodel.Model and ir.FenceKind. Adding RMO or a new fence kind must
// not leave a switch silently falling through — every switch over either
// type needs a default clause or a case for every constant.
//
// The tool is deliberately stdlib-only (go/parser + go/ast, no go/types,
// no x/tools): the enum constant sets are recovered from the defining
// packages' const blocks, and switches are matched syntactically — a
// case expression is an enum reference when it is a selector off the
// defining package (memmodel.PSO, ir.FenceAcquire) or a bare constant
// name inside the defining package itself. That heuristic cannot see
// through aliased imports or local re-declarations, which this repo does
// not use; in exchange the lint runs anywhere the toolchain does.
//
// Usage: modelcheck [dir] (default "."). Walks the tree, skipping
// _test.go files, testdata, and dot-directories. Exits 1 with findings
// on stderr, 0 when clean.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// enum describes one checked constant set.
type enum struct {
	pkg    string // defining package name ("memmodel", "ir")
	typ    string // type name ("Model", "FenceKind")
	consts map[string]bool
}

func (e *enum) String() string { return e.pkg + "." + e.typ }

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	fset := token.NewFileSet()
	files, err := goFiles(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "modelcheck:", err)
		os.Exit(1)
	}
	enums := []*enum{
		{pkg: "memmodel", typ: "Model", consts: map[string]bool{}},
		{pkg: "ir", typ: "FenceKind", consts: map[string]bool{}},
	}
	parsed := make(map[string]*ast.File, len(files))
	for _, path := range files {
		f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			fmt.Fprintln(os.Stderr, "modelcheck:", err)
			os.Exit(1)
		}
		parsed[path] = f
		for _, e := range enums {
			if f.Name.Name == e.pkg {
				collectConsts(f, e)
			}
		}
	}
	for _, e := range enums {
		if len(e.consts) == 0 {
			fmt.Fprintf(os.Stderr, "modelcheck: no %s constants found under %s — wrong directory?\n", e, root)
			os.Exit(1)
		}
	}
	var findings []string
	for _, path := range files {
		f := parsed[path]
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			for _, e := range enums {
				if miss := missing(sw, f.Name.Name, e); len(miss) > 0 {
					pos := fset.Position(sw.Switch)
					findings = append(findings,
						fmt.Sprintf("%s:%d: switch over %s is not exhaustive: missing %s (add the cases or a default)",
							pos.Filename, pos.Line, e, strings.Join(miss, ", ")))
				}
			}
			return true
		})
	}
	if len(findings) > 0 {
		sort.Strings(findings)
		for _, f := range findings {
			fmt.Fprintln(os.Stderr, f)
		}
		fmt.Fprintf(os.Stderr, "modelcheck: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// goFiles lists non-test .go files under root, skipping testdata and
// hidden directories.
func goFiles(root string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name == "testdata" || (strings.HasPrefix(name, ".") && path != root) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			out = append(out, path)
		}
		return nil
	})
	sort.Strings(out)
	return out, err
}

// collectConsts harvests the names of e.typ-typed constants from one file
// of the defining package. Within a const block the declared type carries
// forward through iota-continuation specs (no type, no value).
func collectConsts(f *ast.File, e *enum) {
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		cur := ""
		for _, spec := range gd.Specs {
			vs := spec.(*ast.ValueSpec)
			switch {
			case vs.Type != nil:
				if id, ok := vs.Type.(*ast.Ident); ok {
					cur = id.Name
				} else {
					cur = ""
				}
			case len(vs.Values) > 0:
				cur = "" // explicit untyped value: not part of the enum run
			}
			if cur != e.typ {
				continue
			}
			for _, n := range vs.Names {
				if n.Name != "_" {
					e.consts[n.Name] = true
				}
			}
		}
	}
}

// missing returns the enum constants a switch lacks, or nil when the
// switch is not over this enum, has a default clause, or is exhaustive.
func missing(sw *ast.SwitchStmt, filePkg string, e *enum) []string {
	seen := map[string]bool{}
	matched := false
	for _, stmt := range sw.Body.List {
		cc := stmt.(*ast.CaseClause)
		if cc.List == nil {
			return nil // default clause: anything uncovered is handled
		}
		for _, expr := range cc.List {
			if name, ok := enumRef(expr, filePkg, e); ok {
				seen[name] = true
				matched = true
			}
		}
	}
	if !matched {
		return nil
	}
	var miss []string
	for name := range e.consts {
		if !seen[name] {
			miss = append(miss, name)
		}
	}
	sort.Strings(miss)
	return miss
}

// enumRef reports whether a case expression references a constant of e:
// pkg.Name from outside the defining package, a bare Name inside it.
func enumRef(expr ast.Expr, filePkg string, e *enum) (string, bool) {
	switch x := expr.(type) {
	case *ast.SelectorExpr:
		if id, ok := x.X.(*ast.Ident); ok && id.Name == e.pkg && e.consts[x.Sel.Name] {
			return x.Sel.Name, true
		}
	case *ast.Ident:
		if filePkg == e.pkg && e.consts[x.Name] {
			return x.Name, true
		}
	}
	return "", false
}
