package main

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// analyzeDir runs the lint's pipeline on one directory and returns the
// findings as (enum, missing-joined) pairs.
func analyzeDir(t *testing.T, root string) []string {
	t.Helper()
	fset := token.NewFileSet()
	files, err := goFiles(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatalf("no files under %s", root)
	}
	enums := []*enum{
		{pkg: "memmodel", typ: "Model", consts: map[string]bool{}},
		{pkg: "ir", typ: "FenceKind", consts: map[string]bool{}},
	}
	parsed := make(map[string]*ast.File)
	for _, path := range files {
		f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			t.Fatal(err)
		}
		parsed[path] = f
		for _, e := range enums {
			if f.Name.Name == e.pkg {
				collectConsts(f, e)
			}
		}
	}
	var out []string
	for _, path := range files {
		f := parsed[path]
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			for _, e := range enums {
				if miss := missing(sw, f.Name.Name, e); len(miss) > 0 {
					out = append(out, e.String()+": "+strings.Join(miss, ","))
				}
			}
			return true
		})
	}
	return out
}

func TestFixtureFindings(t *testing.T) {
	got := analyzeDir(t, "testdata/bad")
	// The fixture's Model switch misses RMO; its FenceKind switch has a
	// default and must not be flagged.
	if len(got) != 1 || got[0] != "memmodel.Model: RMO" {
		t.Fatalf("findings = %v, want exactly [memmodel.Model: RMO]", got)
	}
}

func TestRepoIsClean(t *testing.T) {
	if got := analyzeDir(t, "../.."); len(got) != 0 {
		t.Fatalf("repo has non-exhaustive enum switches: %v", got)
	}
}
