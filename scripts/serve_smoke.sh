#!/bin/sh
# serve-smoke: the dfenced crash-recovery gate.
#
# Starts the service, submits examples/mailbox.mc with a round size large
# enough that the run spans several seconds, SIGKILLs the daemon once the
# journal holds a checkpoint, restarts it on the same spool, and asserts
# the job resumes to completion with the expected fence — then that a
# resubmission answers from the memo store, and that SIGTERM drains
# cleanly. Everything the run touches stays under $SMOKE_DIR so CI can
# upload it as an artifact when an assertion trips.
#
#   SMOKE_DIR  working directory (default /tmp/dfence_serve_smoke; wiped)
#   GO         go command (default go)
#   EXECS      executions per round (default 400000 — sized so one round
#              takes seconds, leaving a wide window to kill inside)
set -eu

GO=${GO:-go}
DIR=${SMOKE_DIR:-/tmp/dfence_serve_smoke}
EXECS=${EXECS:-400000}
SPOOL="$DIR/spool"
PID=

say()  { echo "serve-smoke: $*"; }
fail() { echo "serve-smoke: FAIL: $*" >&2; exit 1; }

cleanup() {
    [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
}
trap cleanup EXIT INT TERM

rm -rf "$DIR"
mkdir -p "$DIR"
say "building dfenced"
$GO build -o "$DIR/dfenced" ./cmd/dfenced

# start_daemon <logfile>: launches dfenced on an ephemeral port and sets
# PID and ADDR (parsed from the startup line).
start_daemon() {
    "$DIR/dfenced" -spool "$SPOOL" -listen 127.0.0.1:0 -jobs 1 2>"$1" &
    PID=$!
    ADDR=
    i=0
    while [ $i -lt 100 ]; do
        ADDR=$(sed -n 's|.*serving on http://\([^ ]*\).*|\1|p' "$1" | head -1)
        [ -n "$ADDR" ] && return 0
        kill -0 "$PID" 2>/dev/null || fail "daemon died at startup: $(cat "$1")"
        i=$((i + 1))
        sleep 0.1
    done
    fail "daemon never reported its address: $(cat "$1")"
}

say "starting dfenced (life 1)"
start_daemon "$DIR/daemon1.log"

say "submitting examples/mailbox.mc (execs=$EXECS)"
"$DIR/dfenced" submit -addr "$ADDR" -model pso -seed 7 -execs "$EXECS" -rounds 6 \
    examples/mailbox.mc >"$DIR/submit1.out"
cat "$DIR/submit1.out"
JOB=$(cut -f1 <"$DIR/submit1.out")
[ -n "$JOB" ] || fail "no job id in submit output"
JOURNAL="$SPOOL/journals/$JOB.jsonl"

# Wait for the first checkpoint to hit the journal, then pull the plug.
# (If the box is fast enough that the run converges before we look, the
# kill still exercises restart discovery — just not mid-run resume.)
say "waiting for a checkpoint in $JOURNAL"
i=0
while [ $i -lt 2400 ]; do
    if grep -q '"ev":"Checkpoint"' "$JOURNAL" 2>/dev/null; then
        say "checkpoint journaled; SIGKILLing daemon"
        break
    fi
    if grep -q '"ev":"Converged"' "$JOURNAL" 2>/dev/null; then
        say "run converged before the kill window (EXECS=$EXECS too small for this machine); killing anyway"
        break
    fi
    i=$((i + 1))
    sleep 0.05
done
[ $i -lt 2400 ] || fail "no checkpoint appeared within 120s"
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
PID=

say "restarting dfenced on the same spool (life 2)"
start_daemon "$DIR/daemon2.log"

say "waiting for job $JOB to finish"
"$DIR/dfenced" wait -addr "$ADDR" "$JOB" >"$DIR/result.json" || {
    cat "$DIR/result.json"
    fail "job did not reach done after restart"
}
cat "$DIR/result.json"
grep -q '"outcome": *"converged"' "$DIR/result.json" || fail "job did not converge"
NFENCES=$(grep -c '"kind": *"fence(st-st)"' "$DIR/result.json") || true
[ "$NFENCES" = 1 ] || fail "expected exactly 1 fence(st-st), got $NFENCES"

say "journal replays through the strict reader"
$GO run ./cmd/dfence explain "$JOURNAL" >/dev/null || fail "resumed journal does not replay cleanly"

say "resubmitting the same spec (must hit the memo)"
"$DIR/dfenced" submit -addr "$ADDR" -model pso -seed 7 -execs "$EXECS" -rounds 6 \
    examples/mailbox.mc >"$DIR/submit2.out"
cat "$DIR/submit2.out"
grep -q "from_memo" "$DIR/submit2.out" || fail "resubmission did not hit the memo"

say "draining with SIGTERM"
kill -TERM "$PID"
wait "$PID" || fail "daemon exited non-zero on graceful shutdown"
PID=

say "ok (crash mid-run, resume to convergence, memo hit, graceful drain)"
