// Benchmark harness regenerating every table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index and EXPERIMENTS.md for
// measured-vs-paper results):
//
//	BenchmarkTable3Row/*      one Table 3 row per iteration (reduced K)
//	BenchmarkFig4/*           Figure 4 points (multi-round vs one-round)
//	BenchmarkFig5/*           Figure 5 points (flush-probability sweep)
//	BenchmarkSchedulerSweep/* §6.5 violation exposure per model
//	BenchmarkExecution/*      raw interpreter throughput per benchmark
//	BenchmarkExecutionEngine/* fresh vs pooled machine allocs per execution
//	BenchmarkSynthesizeCache/* execution caching on vs off (validation)
//	BenchmarkChecker/*        SC / linearizability checker throughput
//	BenchmarkSAT/*            repair-formula minimal-model extraction
//	BenchmarkStaticSynthesis/* static fix (analysis + hitting set) per model
//	BenchmarkAblation/*       design-choice ablations (DESIGN.md)
//
// Reported custom metrics: fences/op (inferred fences), violations/op
// (exposed violations), execs/op (executions to convergence).
package dfence_test

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"dfence/internal/core"
	"dfence/internal/eval"
	"dfence/internal/interp"
	"dfence/internal/ir"
	"dfence/internal/memmodel"
	"dfence/internal/progs"
	"dfence/internal/sat"
	"dfence/internal/sched"
	"dfence/internal/spec"
	"dfence/internal/staticanalysis"
)

// benchCfg builds a reduced-budget synthesis configuration that still
// converges to the Table 3 answers for the given cell.
func benchCfg(b *progs.Benchmark, model memmodel.Model, crit spec.Criterion, seed int64) core.Config {
	fp := 0.5
	if model == memmodel.TSO {
		fp = 0.1
	}
	return core.Config{
		Model:            model,
		Criterion:        crit,
		NewSpec:          b.NewSpec(),
		CheckGarbage:     b.CheckGarbage,
		RelaxStealAborts: b.RelaxStealAborts,
		ExecsPerRound:    400,
		MaxRounds:        8,
		FlushProb:        fp,
		Seed:             seed,
		ValidateFences:   true,
	}
}

// BenchmarkTable3Row regenerates one Table 3 row per iteration.
func BenchmarkTable3Row(b *testing.B) {
	for _, bench := range progs.All() {
		bench := bench
		b.Run(bench.Name, func(b *testing.B) {
			fences := 0
			for i := 0; i < b.N; i++ {
				crits := []spec.Criterion{spec.MemorySafety}
				if !bench.SkipSeqCheck {
					crits = append(crits, spec.SeqConsistency, spec.Linearizability)
				}
				for _, crit := range crits {
					for _, m := range []memmodel.Model{memmodel.TSO, memmodel.PSO} {
						res, err := core.Synthesize(bench.Program(), benchCfg(bench, m, crit, int64(i+1)))
						if err != nil {
							b.Fatal(err)
						}
						fences += len(res.Fences)
					}
				}
			}
			b.ReportMetric(float64(fences)/float64(b.N), "fences/op")
		})
	}
}

// BenchmarkFig4 regenerates Figure 4 points: executions-per-round K in
// multi-round vs one-round repair mode (Cilk THE, SC, PSO).
func BenchmarkFig4(b *testing.B) {
	subject, err := progs.ByName(eval.Fig4Subject)
	if err != nil {
		b.Fatal(err)
	}
	for _, k := range []int{100, 500, 1000} {
		for _, oneRound := range []bool{false, true} {
			mode := "multi-round"
			if oneRound {
				mode = "one-round"
			}
			b.Run(fmt.Sprintf("K=%d/%s", k, mode), func(b *testing.B) {
				fences, execs := 0, 0
				for i := 0; i < b.N; i++ {
					cfg := benchCfg(subject, memmodel.PSO, spec.SeqConsistency, int64(i+1))
					cfg.ExecsPerRound = k
					cfg.ValidateFences = false
					if oneRound {
						cfg.MaxRounds = 1
					}
					res, err := core.Synthesize(subject.Program(), cfg)
					if err != nil {
						b.Fatal(err)
					}
					fences += res.SynthesizedFences
					execs += res.TotalExecutions
				}
				b.ReportMetric(float64(fences)/float64(b.N), "fences/op")
				b.ReportMetric(float64(execs)/float64(b.N), "execs/op")
			})
		}
	}
}

// BenchmarkFig5 regenerates Figure 5 points: fences synthesized vs flush
// probability, split into needed and redundant.
func BenchmarkFig5(b *testing.B) {
	subject, err := progs.ByName("chase-lev")
	if err != nil {
		b.Fatal(err)
	}
	for _, fp := range []float64{0.1, 0.5, 0.9} {
		b.Run(fmt.Sprintf("flush=%.1f", fp), func(b *testing.B) {
			synthesized, needed := 0, 0
			for i := 0; i < b.N; i++ {
				cfg := benchCfg(subject, memmodel.PSO, spec.Linearizability, int64(i+1))
				cfg.FlushProb = fp
				res, err := core.Synthesize(subject.Program(), cfg)
				if err != nil {
					b.Fatal(err)
				}
				synthesized += res.SynthesizedFences
				needed += len(res.Fences)
			}
			b.ReportMetric(float64(synthesized)/float64(b.N), "synthesized/op")
			b.ReportMetric(float64(needed)/float64(b.N), "needed/op")
		})
	}
}

// BenchmarkSchedulerSweep measures §6.5: violations exposed per 200 runs
// at the model's recommended flush probability vs a mismatched one.
func BenchmarkSchedulerSweep(b *testing.B) {
	subject, err := progs.ByName("chase-lev")
	if err != nil {
		b.Fatal(err)
	}
	for _, c := range []struct {
		model memmodel.Model
		fp    float64
	}{
		{memmodel.TSO, 0.1}, {memmodel.TSO, 0.9},
		{memmodel.PSO, 0.5}, {memmodel.PSO, 0.9},
	} {
		b.Run(fmt.Sprintf("%v/flush=%.1f", c.model, c.fp), func(b *testing.B) {
			viol := 0
			for i := 0; i < b.N; i++ {
				cfg := benchCfg(subject, c.model, spec.SeqConsistency, int64(i+1))
				cfg.FlushProb = c.fp
				viol += core.CheckOnly(subject.Program(), cfg, 200)
			}
			b.ReportMetric(float64(viol)/float64(b.N), "violations/op")
		})
	}
}

// BenchmarkSynthesizeWorkers is the serial-vs-parallel pair for the
// execution engine: the same Chase-Lev PSO synthesis (fixed seed, so the
// fence sets are identical) at Workers=1 and Workers=NumCPU. The ratio of
// the two wall times is the engine's speedup; per-round throughput is also
// reported via execs/s.
func BenchmarkSynthesizeWorkers(b *testing.B) {
	subject, err := progs.ByName("chase-lev")
	if err != nil {
		b.Fatal(err)
	}
	workerCounts := []int{1}
	if n := runtime.NumCPU(); n > 1 {
		workerCounts = append(workerCounts, n)
	}
	for _, w := range workerCounts {
		w := w
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			execs := 0
			var wall time.Duration
			for i := 0; i < b.N; i++ {
				cfg := benchCfg(subject, memmodel.PSO, spec.SeqConsistency, 1)
				cfg.Workers = w
				cfg.ValidateFences = false
				res, err := core.Synthesize(subject.Program(), cfg)
				if err != nil {
					b.Fatal(err)
				}
				execs += res.TotalExecutions
				for _, r := range res.Rounds {
					wall += r.Wall
				}
			}
			b.ReportMetric(float64(execs)/float64(b.N), "execs/op")
			if wall > 0 {
				b.ReportMetric(float64(execs)/wall.Seconds(), "execs/s")
			}
		})
	}
}

// BenchmarkExecutionEngine is the per-execution allocation comparison for
// the pooled engine: the same Chase-Lev PSO execution stream run through
// fresh one-shot machines (sched.Run allocates a machine, store buffers,
// and history per call) vs the pooled batch engine (one reused machine
// per worker, compiled dispatch, Reset between executions). allocs/op is
// the headline metric; the executions are bit-identical either way (see
// internal/core's determinism tests).
func BenchmarkExecutionEngine(b *testing.B) {
	subject, err := progs.ByName("chase-lev")
	if err != nil {
		b.Fatal(err)
	}
	p := subject.Program()
	optsFor := func(i int) sched.Options { return sched.DefaultOptions(int64(i)) }
	b.Run("fresh-machine", func(b *testing.B) {
		b.ReportAllocs()
		steps := 0
		for i := 0; i < b.N; i++ {
			steps += sched.Run(p, memmodel.PSO, nil, optsFor(i)).Steps
		}
		b.ReportMetric(float64(steps)/float64(b.N), "steps/op")
	})
	b.Run("pooled-machine", func(b *testing.B) {
		b.ReportAllocs()
		steps := 0
		sched.RunBatch(context.Background(), p, memmodel.PSO, b.N, 1, nil, optsFor,
			func(i, _ int, _ interp.Observer, res *interp.Result, _ *sched.ExecError) (struct{}, bool) {
				steps += res.Steps
				return struct{}{}, false
			})
		b.ReportMetric(float64(steps)/float64(b.N), "steps/op")
	})
	// The struct-of-arrays engine at full fan-out: same execution stream
	// across NumCPU workers, each owning one machine whose thread table,
	// register arenas, and store buffers are machine-owned flat storage.
	// execs/s is the acceptance-throughput metric tracked in EXPERIMENTS.md.
	b.Run("soa-parallel", func(b *testing.B) {
		b.ReportAllocs()
		var steps atomic.Int64
		start := time.Now()
		sched.RunBatch(context.Background(), p, memmodel.PSO, b.N, runtime.NumCPU(), nil, optsFor,
			func(i, _ int, _ interp.Observer, res *interp.Result, _ *sched.ExecError) (struct{}, bool) {
				steps.Add(int64(res.Steps))
				return struct{}{}, false
			})
		wall := time.Since(start)
		b.ReportMetric(float64(steps.Load())/float64(b.N), "steps/op")
		if wall > 0 {
			b.ReportMetric(float64(b.N)/wall.Seconds(), "execs/s")
		}
	})
}

// BenchmarkIncrementalSAT measures cross-round solver persistence: the
// same staged sequence of growing monotone formulas (shaped like a
// synthesis run's per-round φ over an overlapping predicate vocabulary)
// enumerated by one persistent sat.Incremental versus a fresh solver per
// round. The minimal-model sets are bit-identical (see the differential
// tests); the persistent solver keeps its learnt clauses, VSIDS
// activity, and saved phases between rounds.
func BenchmarkIncrementalSAT(b *testing.B) {
	const (
		nvars  = 28
		rounds = 6
	)
	// Pre-generate the round clause sets once, outside the timer.
	perRound := make([][][]sat.Lit, rounds)
	rng := rand.New(rand.NewSource(17))
	for r := range perRound {
		n := 20 + 10*r // φ grows round over round
		clauses := make([][]sat.Lit, n)
		for i := range clauses {
			w := 2 + rng.Intn(5)
			c := make([]sat.Lit, w)
			for j := range c {
				c[j] = sat.Lit(1 + rng.Intn(nvars))
			}
			clauses[i] = c
		}
		perRound[r] = clauses
	}
	budget := sat.Budget{MaxModels: 512}
	b.Run("persistent", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			inc := sat.NewIncremental()
			inc.EnsureVars(nvars)
			for r, clauses := range perRound {
				if r > 0 {
					inc.BeginRound()
				}
				for _, c := range clauses {
					inc.AddClause(c)
				}
				inc.MinimalModels(budget, nil)
			}
		}
	})
	b.Run("fresh-per-round", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, clauses := range perRound {
				sat.MinimalModelsBudget(nvars, clauses, budget)
			}
		}
	})
}

// BenchmarkSpecAutomaton measures the compiled-spec sequentialization
// search on realistic Chase-Lev histories: the automaton path (interned
// states, table-lookup transitions, integer memo keys) versus the legacy
// string-keyed dfs, each on a reused Checker as the engine uses them.
func BenchmarkSpecAutomaton(b *testing.B) {
	subject, err := progs.ByName("chase-lev")
	if err != nil {
		b.Fatal(err)
	}
	p := subject.Program()
	var histories [][]spec.Op
	for s := int64(0); s < 32; s++ {
		res := sched.Run(p, memmodel.PSO, nil, sched.DefaultOptions(s))
		ops := spec.RelaxStealAborts(spec.CompleteOps(res.History))
		histories = append(histories, ops)
	}
	for _, disable := range []bool{false, true} {
		name := "automaton"
		if disable {
			name = "legacy-dfs"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var c spec.Checker
			c.DisableAutomaton = disable
			for i := 0; i < b.N; i++ {
				c.Check(spec.SeqConsistency, histories[i%len(histories)], spec.NewDeque, false)
			}
		})
	}
}

// BenchmarkSynthesizeCache measures the cross-phase execution caching:
// the same Chase-Lev PSO synthesis with fence validation (the phase the
// fence-touch cache accelerates) with the caches enabled vs disabled.
// The fence sets are identical either way — the caches are exact.
func BenchmarkSynthesizeCache(b *testing.B) {
	subject, err := progs.ByName("chase-lev")
	if err != nil {
		b.Fatal(err)
	}
	for _, nocache := range []bool{false, true} {
		name := "cache=on"
		if nocache {
			name = "cache=off"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			execs, hits := 0, 0
			for i := 0; i < b.N; i++ {
				cfg := benchCfg(subject, memmodel.PSO, spec.SeqConsistency, 1)
				cfg.Workers = 1
				cfg.NoExecCache = nocache
				res, err := core.Synthesize(subject.Program(), cfg)
				if err != nil {
					b.Fatal(err)
				}
				execs += res.TotalExecutions
				hits += res.CacheHits
			}
			b.ReportMetric(float64(execs)/float64(b.N), "execs/op")
			if !nocache {
				b.ReportMetric(float64(hits)/float64(b.N), "cachehits/op")
			}
		})
	}
}

// BenchmarkSynthesizePruned measures the static delay-set pruning on the
// two largest benchmarks: the same synthesis (fixed seed, identical seed
// schedule) with StaticPrune off and on. Reported metrics: executions to
// convergence, fences synthesized, and — for the pruned runs — the
// predicates discarded because they lie on no static critical cycle.
func BenchmarkSynthesizePruned(b *testing.B) {
	for _, name := range []string{"chase-lev", "michael-alloc"} {
		subject, err := progs.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		crit := spec.SeqConsistency
		if subject.SkipSeqCheck {
			crit = spec.MemorySafety
		}
		for _, prune := range []bool{false, true} {
			mode := "static=off"
			if prune {
				mode = "static=on"
			}
			b.Run(name+"/"+mode, func(b *testing.B) {
				execs, fences, pruned := 0, 0, 0
				for i := 0; i < b.N; i++ {
					cfg := benchCfg(subject, memmodel.PSO, crit, 1)
					cfg.ValidateFences = false
					cfg.StaticPrune = prune
					res, err := core.Synthesize(subject.Program(), cfg)
					if err != nil {
						b.Fatal(err)
					}
					execs += res.TotalExecutions
					fences += res.SynthesizedFences
					pruned += res.PrunedPredicates
				}
				b.ReportMetric(float64(execs)/float64(b.N), "execs/op")
				b.ReportMetric(float64(fences)/float64(b.N), "fences/op")
				if prune {
					b.ReportMetric(float64(pruned)/float64(b.N), "pruned/op")
				}
			})
		}
	}
}

// BenchmarkExecution measures raw interpreter throughput: one complete
// scheduled execution of each benchmark per iteration.
func BenchmarkExecution(b *testing.B) {
	for _, bench := range progs.All() {
		bench := bench
		b.Run(bench.Name, func(b *testing.B) {
			p := bench.Program()
			steps := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := sched.Run(p, memmodel.PSO, nil, sched.DefaultOptions(int64(i)))
				steps += res.Steps
			}
			b.ReportMetric(float64(steps)/float64(b.N), "steps/op")
		})
	}
}

// BenchmarkChecker measures the history checkers on realistic histories
// extracted from real executions.
func BenchmarkChecker(b *testing.B) {
	subject, err := progs.ByName("chase-lev")
	if err != nil {
		b.Fatal(err)
	}
	p := subject.Program()
	var histories [][]spec.Op
	for s := int64(0); s < 20; s++ {
		res := sched.Run(p, memmodel.PSO, nil, sched.DefaultOptions(s))
		histories = append(histories, spec.RelaxStealAborts(spec.CompleteOps(res.History)))
	}
	b.Run("sequential-consistency", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			spec.IsSequentiallyConsistent(histories[i%len(histories)], spec.NewDeque)
		}
	})
	b.Run("linearizability", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			spec.IsLinearizable(histories[i%len(histories)], spec.NewDeque)
		}
	})
}

// BenchmarkSAT measures minimal-model extraction on random monotone
// formulas shaped like accumulated repair formulas.
func BenchmarkSAT(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	const nvars = 24
	var clauses [][]sat.Lit
	for i := 0; i < 60; i++ {
		w := 2 + rng.Intn(6)
		c := make([]sat.Lit, w)
		for j := range c {
			c[j] = sat.Lit(1 + rng.Intn(nvars))
		}
		clauses = append(clauses, c)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sat.MinimalModels(nvars, clauses)
	}
}

// BenchmarkAblation exercises the design choices called out in DESIGN.md.
func BenchmarkAblation(b *testing.B) {
	subject, err := progs.ByName("chase-lev")
	if err != nil {
		b.Fatal(err)
	}

	// 1. Minimal-model selection vs enforcing every mentioned predicate.
	b.Run("minimize=on", func(b *testing.B) {
		fences := 0
		for i := 0; i < b.N; i++ {
			cfg := benchCfg(subject, memmodel.PSO, spec.SeqConsistency, int64(i+1))
			cfg.ValidateFences = false
			res, err := core.Synthesize(subject.Program(), cfg)
			if err != nil {
				b.Fatal(err)
			}
			fences += res.SynthesizedFences
		}
		b.ReportMetric(float64(fences)/float64(b.N), "fences/op")
	})
	b.Run("minimize=off", func(b *testing.B) {
		fences := 0
		for i := 0; i < b.N; i++ {
			cfg := benchCfg(subject, memmodel.PSO, spec.SeqConsistency, int64(i+1))
			cfg.ValidateFences = false
			cfg.NoMinimize = true
			res, err := core.Synthesize(subject.Program(), cfg)
			if err != nil {
				b.Fatal(err)
			}
			fences += res.SynthesizedFences
		}
		b.ReportMetric(float64(fences)/float64(b.N), "fences/op")
	})

	// 2. Partial-order reduction on/off: raw execution cost.
	p := subject.Program()
	for _, por := range []int{64, 0} {
		b.Run(fmt.Sprintf("PORWindow=%d", por), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := sched.DefaultOptions(int64(i))
				opts.PORWindow = por
				sched.Run(p, memmodel.PSO, nil, opts)
			}
		})
	}

	// 3. Fence validation on/off: fence-count delta.
	for _, validate := range []bool{true, false} {
		b.Run(fmt.Sprintf("validate=%v", validate), func(b *testing.B) {
			fences := 0
			for i := 0; i < b.N; i++ {
				cfg := benchCfg(subject, memmodel.PSO, spec.Linearizability, int64(i+1))
				cfg.ValidateFences = validate
				res, err := core.Synthesize(subject.Program(), cfg)
				if err != nil {
					b.Fatal(err)
				}
				fences += len(res.Fences)
			}
			b.ReportMetric(float64(fences)/float64(b.N), "fences/op")
		})
	}
}

// BenchmarkStaticSynthesis measures the static fence-synthesis pipeline
// (delay-set analysis + weighted hitting-set placement, `dfence analyze
// -fix`) per corpus benchmark under each relaxed model. Reported metrics:
// fences placed, their summed cost, and the cost of the all-full-fence
// baseline the solver must beat. Wall time per op is the headline —
// EXPERIMENTS.md compares it against dynamic synthesis on the same cells.
func BenchmarkStaticSynthesis(b *testing.B) {
	for _, bench := range progs.All() {
		bench := bench
		p := bench.Program()
		for _, m := range []memmodel.Model{memmodel.TSO, memmodel.PSO, memmodel.RMO} {
			m := m
			b.Run(fmt.Sprintf("%s/%v", bench.Name, m), func(b *testing.B) {
				fences, cost, baseline := 0, 0, 0
				for i := 0; i < b.N; i++ {
					fr, err := staticanalysis.Fix(p, m)
					if err != nil {
						b.Fatal(err)
					}
					fences += len(fr.Placements)
					cost += fr.TotalCost
					baseline += fr.BaselineCost
				}
				b.ReportMetric(float64(fences)/float64(b.N), "fences/op")
				b.ReportMetric(float64(cost)/float64(b.N), "cost/op")
				b.ReportMetric(float64(baseline)/float64(b.N), "baseline/op")
			})
		}
	}
}

// BenchmarkOptimizer measures the IR optimizer's effect: compile time cost
// per pass and the interpretation speedup of optimized programs.
func BenchmarkOptimizer(b *testing.B) {
	subject, err := progs.ByName("michael-alloc")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("pass", func(b *testing.B) {
		removed := 0
		for i := 0; i < b.N; i++ {
			p := subject.Program()
			removed += ir.Optimize(p)
		}
		b.ReportMetric(float64(removed)/float64(b.N), "removed/op")
	})
	raw := subject.Program()
	opt := subject.Program()
	ir.Optimize(opt)
	b.Run("exec-raw", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sched.Run(raw, memmodel.PSO, nil, sched.DefaultOptions(int64(i)))
		}
	})
	b.Run("exec-optimized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sched.Run(opt, memmodel.PSO, nil, sched.DefaultOptions(int64(i)))
		}
	})
}

// BenchmarkSchedulerStrategy compares the paper's random scheduler with
// the PCT-style priority strategy on violation exposure.
func BenchmarkSchedulerStrategy(b *testing.B) {
	subject, err := progs.ByName("chase-lev")
	if err != nil {
		b.Fatal(err)
	}
	p := subject.Program()
	newSpec := subject.NewSpec()
	for _, strat := range []sched.Strategy{sched.Random, sched.Priority} {
		strat := strat
		b.Run(strat.String(), func(b *testing.B) {
			viol := 0
			for i := 0; i < b.N; i++ {
				for s := 0; s < 200; s++ {
					opts := sched.Options{
						Seed: int64(i*200 + s), FlushProb: 0.5,
						MaxSteps: 100000, PORWindow: 64, Strategy: strat,
					}
					res := sched.Run(p, memmodel.PSO, nil, opts)
					if res.Violation != nil || res.StepLimitHit {
						continue
					}
					ops := spec.RelaxStealAborts(spec.CompleteOps(res.History))
					if !spec.IsSequentiallyConsistent(ops, newSpec) {
						viol++
					}
				}
			}
			b.ReportMetric(float64(viol)/float64(b.N), "violations/op")
		})
	}
}
