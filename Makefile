# Tier-1 verification and CI entry points for dfence-go.
#
#   make build   compile every package
#   make test    full test suite (the tier-1 gate together with build)
#   make race    test suite under the race detector — exercises the
#                parallel execution engine's worker pool
#   make vet     static checks
#   make lint    cmd/modelcheck (exhaustive switches over memmodel.Model
#                and ir.FenceKind; stdlib-only, always runs), then
#                staticcheck, if installed (CI installs it; locally it is
#                skipped with a notice when absent)
#   make bench   one pass over every benchmark (smoke; use BENCHTIME for
#                real measurements, e.g. make bench BENCHTIME=3s)
#   make bench-json     run the engine benchmarks with -benchmem and write
#                       them as JSON (BENCH_JSON, default BENCH_pr9.json)
#                       via cmd/benchjson — no external tools needed
#   make bench-compare  benchstat OLD=a.txt NEW=b.txt, when benchstat is
#                       installed (it is not vendored; skipped otherwise)
#   make bench-gate     rerun the engine benchmarks and fail if the
#                       acceptance benchmarks (GATE_BENCH) regressed more
#                       than GATE_THRESHOLD x against the committed
#                       BENCH_JSON baseline — stdlib-only (cmd/benchgate),
#                       gating in CI
#   make journal-smoke  record a run journal and replay it through
#                       `dfence explain` — fails if the journal schema
#                       drifted (the strict reader rejects it) or the
#                       witness no longer renders
#   make serve-smoke    dfenced crash-recovery gate: start the service,
#                       submit examples/mailbox.mc, SIGKILL the daemon
#                       once a checkpoint is journaled, restart it on the
#                       same spool, and assert the job resumes to the
#                       expected fence, the memo answers a resubmission,
#                       and SIGTERM drains cleanly (artifacts under
#                       SMOKE_DIR)
#   make trace-smoke    record a span trace with -trace, validate it
#                       against the strict trace reader, and render the
#                       terminal summary with `dfence trace` — fails if
#                       the trace-event schema drifted or the summary no
#                       longer renders (artifact at TRACE_JSON)
#   make fuzz-smoke     differential fuzzing campaign at a fixed seed:
#                       200 generated programs cross-checked between
#                       exhaustive enumeration, static analysis, and
#                       dynamic synthesis under SC+TSO+PSO+RMO — fails
#                       on any divergence, writing shrunk repros to
#                       FUZZ_OUT (override FUZZ_SEED/FUZZ_N for ad-hoc
#                       campaigns; nightly CI runs a 10x budget)
#   make ci      everything a PR must pass

GO ?= go
BENCHTIME ?= 1x
BENCH_JSON ?= BENCH_pr9.json
JOURNAL ?= /tmp/dfence_journal_smoke.jsonl
TRACE_JSON ?= /tmp/dfence_trace_smoke.trace.json
SMOKE_DIR ?= /tmp/dfence_serve_smoke
FUZZ_SEED ?= 1
FUZZ_N ?= 200
FUZZ_OUT ?= /tmp/dfence_fuzz_smoke
# The engine benchmarks: the acceptance metrics (execution throughput,
# allocations, cache effect, solver persistence, spec automaton) — what
# bench-json snapshots and bench-gate regresses against.
ENGINE_BENCH = BenchmarkSynthesizeWorkers|BenchmarkExecutionEngine|BenchmarkSynthesizeCache|BenchmarkIncrementalSAT|BenchmarkSpecAutomaton
# The gating subset and tolerance for bench-gate: only the acceptance
# benchmarks' wall-clock metrics gate, and only on a step-function
# regression (CI machines are too noisy for tight thresholds).
GATE_BENCH ?= BenchmarkExecutionEngine|BenchmarkSynthesizeWorkers
# 1.6x: run-to-run variance of the acceptance benchmark on shared
# single-CPU runners was measured at up to ~1.5x within one session; the
# gate is for step-function regressions, not percent drift.
GATE_THRESHOLD ?= 1.6
GATE_NEW ?= /tmp/dfence_bench_gate.json
GATE_RAW ?= /tmp/dfence_bench_gate.txt
OLD ?= bench_old.txt
NEW ?= bench_new.txt

.PHONY: build test race vet lint bench bench-json bench-compare bench-gate journal-smoke serve-smoke trace-smoke fuzz-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/modelcheck .
	@command -v staticcheck >/dev/null 2>&1 && staticcheck ./... || \
		echo "staticcheck not installed; skipping (CI runs it)"

bench:
	$(GO) test -run '^$$' -bench . -benchtime $(BENCHTIME) .

bench-json:
	$(GO) test -run '^$$' -bench '$(ENGINE_BENCH)' -benchmem -benchtime $(BENCHTIME) . \
		| $(GO) run ./cmd/benchjson > $(BENCH_JSON)

bench-compare:
	@command -v benchstat >/dev/null 2>&1 && benchstat $(OLD) $(NEW) || \
		echo "benchstat not installed; skipping (go install golang.org/x/perf/cmd/benchstat@latest)"

# Benchmark regression gate: rerun the engine benchmarks, convert to
# JSON, and compare the acceptance benchmarks (GATE_BENCH) against the
# committed baseline (BENCH_JSON) with cmd/benchgate. Fails on a
# >GATE_THRESHOLD x wall-clock regression. The raw `go test -bench`
# output is kept at GATE_RAW so CI can also feed it to benchstat for the
# human-readable artifact. Stdlib-only — no benchstat required to gate.
bench-gate:
	$(GO) test -run '^$$' -bench '$(ENGINE_BENCH)' -benchmem -benchtime $(BENCHTIME) . \
		| tee $(GATE_RAW) | $(GO) run ./cmd/benchjson > $(GATE_NEW)
	$(GO) run ./cmd/benchgate -old $(BENCH_JSON) -new $(GATE_NEW) \
		-bench '$(GATE_BENCH)' -threshold $(GATE_THRESHOLD)

# Journal schema smoke: record a real run's journal, then replay it
# through the strict reader and the witness explainer. ReadJournal
# rejects unknown events/fields and version mismatches, and explain
# exits non-zero when no witness renders, so this trips on schema drift
# end to end.
journal-smoke:
	$(GO) run ./cmd/dfence -model pso -spec safety -execs 300 \
		-journal $(JOURNAL) examples/mailbox.mc >/dev/null
	$(GO) run ./cmd/dfence explain $(JOURNAL) >/dev/null
	@echo "journal-smoke: ok ($(JOURNAL) replayed cleanly)"

# dfenced crash-recovery smoke: kill -9 mid-run, restart, assert the job
# resumes from its journal checkpoint to the expected result. See
# scripts/serve_smoke.sh for the full sequence.
serve-smoke:
	GO="$(GO)" SMOKE_DIR="$(SMOKE_DIR)" sh scripts/serve_smoke.sh

# Trace schema smoke: record a real run's span trace, then replay it
# through the strict trace reader and the terminal summarizer. Read
# rejects unknown fields, malformed events, and format-version drift,
# and `dfence trace` exits non-zero on a file it cannot summarize, so
# this trips on trace-event schema drift end to end.
trace-smoke:
	$(GO) run ./cmd/dfence -model pso -spec safety -execs 300 \
		-trace $(TRACE_JSON) examples/mailbox.mc >/dev/null
	$(GO) run ./cmd/dfence trace $(TRACE_JSON) >/dev/null
	@echo "trace-smoke: ok ($(TRACE_JSON) summarized cleanly)"

# Differential fuzzing smoke: a fixed-seed campaign over FUZZ_N programs
# (critical-cycle litmus templates + seeded random mini-C programs),
# each cross-checked between exhaustive interleaving+flush+resolve
# enumeration, static delay-set analysis, and dynamic fence synthesis
# under SC, TSO, PSO, and RMO. Same seed, same flags => bit-identical
# report, so this gates CI deterministically; any divergence exits
# non-zero with a shrunk reproduction under $(FUZZ_OUT).
fuzz-smoke:
	$(GO) run ./cmd/dfence fuzz -seed $(FUZZ_SEED) -n $(FUZZ_N) -out $(FUZZ_OUT)

ci: build vet lint test race journal-smoke serve-smoke trace-smoke fuzz-smoke
