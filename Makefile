# Tier-1 verification and CI entry points for dfence-go.
#
#   make build   compile every package
#   make test    full test suite (the tier-1 gate together with build)
#   make race    test suite under the race detector — exercises the
#                parallel execution engine's worker pool
#   make vet     static checks
#   make lint    staticcheck, if installed (CI installs it; locally it is
#                skipped with a notice when absent)
#   make bench   one pass over every benchmark (smoke; use BENCHTIME for
#                real measurements, e.g. make bench BENCHTIME=3s)
#   make bench-json     run the engine benchmarks with -benchmem and write
#                       them as JSON (BENCH_JSON, default BENCH_pr4.json)
#                       via cmd/benchjson — no external tools needed
#   make bench-compare  benchstat OLD=a.txt NEW=b.txt, when benchstat is
#                       installed (it is not vendored; skipped otherwise)
#   make ci      everything a PR must pass

GO ?= go
BENCHTIME ?= 1x
BENCH_JSON ?= BENCH_pr4.json
# The engine benchmarks: the PR 4 acceptance metrics (throughput,
# allocations, cache effect) — what bench-json snapshots.
ENGINE_BENCH = BenchmarkSynthesizeWorkers|BenchmarkExecutionEngine|BenchmarkSynthesizeCache
OLD ?= bench_old.txt
NEW ?= bench_new.txt

.PHONY: build test race vet lint bench bench-json bench-compare ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

lint:
	@command -v staticcheck >/dev/null 2>&1 && staticcheck ./... || \
		echo "staticcheck not installed; skipping (CI runs it)"

bench:
	$(GO) test -run '^$$' -bench . -benchtime $(BENCHTIME) .

bench-json:
	$(GO) test -run '^$$' -bench '$(ENGINE_BENCH)' -benchmem -benchtime $(BENCHTIME) . \
		| $(GO) run ./cmd/benchjson > $(BENCH_JSON)

bench-compare:
	@command -v benchstat >/dev/null 2>&1 && benchstat $(OLD) $(NEW) || \
		echo "benchstat not installed; skipping (go install golang.org/x/perf/cmd/benchstat@latest)"

ci: build vet test race
