# Tier-1 verification and CI entry points for dfence-go.
#
#   make build   compile every package
#   make test    full test suite (the tier-1 gate together with build)
#   make race    test suite under the race detector — exercises the
#                parallel execution engine's worker pool
#   make vet     static checks
#   make lint    staticcheck, if installed (CI installs it; locally it is
#                skipped with a notice when absent)
#   make bench   one pass over every benchmark (smoke; use BENCHTIME for
#                real measurements, e.g. make bench BENCHTIME=3s)
#   make ci      everything a PR must pass

GO ?= go
BENCHTIME ?= 1x

.PHONY: build test race vet lint bench ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

lint:
	@command -v staticcheck >/dev/null 2>&1 && staticcheck ./... || \
		echo "staticcheck not installed; skipping (CI runs it)"

bench:
	$(GO) test -run '^$$' -bench . -benchtime $(BENCHTIME) .

ci: build vet test race
